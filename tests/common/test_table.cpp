#include "cpm/common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "cpm/common/error.hpp"

namespace cpm {
namespace {

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(1.25), "1.25");
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.0), "0");
  EXPECT_EQ(format_double(-2.5), "-2.5");
}

TEST(Table, BuildsAndPrints) {
  Table t({"name", "value"});
  t.row().add("alpha").add(1.5);
  t.row().add("beta").add(std::size_t{42});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.at(0, 0), "alpha");
  EXPECT_EQ(t.at(1, 1), "42");

  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().add(1).add(2);
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, RejectsOverflowAndIncompleteRows) {
  Table t({"only"});
  EXPECT_THROW(t.add("no row yet"), Error);
  t.row().add("x");
  EXPECT_THROW(t.add("overflow"), Error);
  Table t2({"a", "b"});
  t2.row().add("unfinished");
  EXPECT_THROW(t2.row(), Error);      // previous row incomplete
  EXPECT_THROW(t2.to_string(), Error);
}

TEST(Table, AtValidatesRange) {
  Table t({"a"});
  t.row().add("x");
  EXPECT_THROW(static_cast<void>(t.at(1, 0)), Error);
  EXPECT_THROW(static_cast<void>(t.at(0, 1)), Error);
}

TEST(Table, NeedsAtLeastOneColumn) {
  EXPECT_THROW(Table({}), Error);
}

TEST(Banner, Prints) {
  std::ostringstream os;
  print_banner(os, "E1");
  EXPECT_EQ(os.str(), "\n== E1 ==\n");
}

}  // namespace
}  // namespace cpm
