#include "cpm/common/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cpm/common/error.hpp"

namespace cpm {
namespace {

TEST(KahanSum, CompensatesSmallTerms) {
  KahanSum k;
  k.add(1e16);
  for (int i = 0; i < 10000; ++i) k.add(1.0);
  k.add(-1e16);
  EXPECT_DOUBLE_EQ(k.value(), 10000.0);
}

TEST(ApproxEqual, Basics) {
  EXPECT_TRUE(approx_equal(1.0, 1.0));
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-13));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(0.0, 0.0));
  EXPECT_TRUE(approx_equal(1e9, 1e9 * (1.0 + 1e-10)));
}

TEST(LogFactorial, MatchesSmallFactorials) {
  EXPECT_NEAR(log_factorial(0), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(1), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-10);
  EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-9);
}

TEST(SumAndDot, Work) {
  EXPECT_DOUBLE_EQ(sum({1.0, 2.0, 3.0}), 6.0);
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0}, {3.0, 4.0}), 11.0);
  EXPECT_THROW(dot({1.0}, {1.0, 2.0}), Error);
}

TEST(ClampBox, Clamps) {
  const auto v = clamp_box({-1.0, 0.5, 9.0}, {0.0, 0.0, 0.0}, {1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 0.5);
  EXPECT_DOUBLE_EQ(v[2], 1.0);
}

TEST(GammaP, ExponentialSpecialCase) {
  // P(1, x) = 1 - e^-x.
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0})
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12) << "x=" << x;
}

TEST(GammaP, ErlangSpecialCase) {
  // P(2, x) = 1 - e^-x (1 + x).
  for (double x : {0.5, 1.0, 3.0, 8.0})
    EXPECT_NEAR(gamma_p(2.0, x), 1.0 - std::exp(-x) * (1.0 + x), 1e-12);
}

TEST(GammaP, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(gamma_p(2.0, 0.0), 0.0);
  EXPECT_NEAR(gamma_p(3.0, 100.0), 1.0, 1e-12);
  EXPECT_THROW(gamma_p(0.0, 1.0), Error);
  EXPECT_THROW(gamma_p(1.0, -1.0), Error);
}

TEST(GammaP, MonotoneInX) {
  double prev = 0.0;
  for (double x = 0.1; x < 10.0; x += 0.3) {
    const double p = gamma_p(2.5, x);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(GammaQuantile, RoundTripsThroughCdf) {
  for (double shape : {0.5, 1.0, 2.0, 7.3}) {
    for (double p : {0.05, 0.5, 0.9, 0.95, 0.99}) {
      const double x = gamma_quantile(p, shape, 1.0);
      EXPECT_NEAR(gamma_p(shape, x), p, 1e-9)
          << "shape=" << shape << " p=" << p;
    }
  }
}

TEST(GammaQuantile, ExponentialClosedForm) {
  // Gamma(1, scale) is Exp(1/scale): q(p) = -scale ln(1-p).
  for (double p : {0.5, 0.9, 0.95}) {
    EXPECT_NEAR(gamma_quantile(p, 1.0, 2.0), -2.0 * std::log(1.0 - p), 1e-9);
  }
}

TEST(GammaQuantile, ScaleIsLinear) {
  const double q1 = gamma_quantile(0.9, 3.0, 1.0);
  const double q5 = gamma_quantile(0.9, 3.0, 5.0);
  EXPECT_NEAR(q5, 5.0 * q1, 1e-9);
}

TEST(GammaQuantile, Validation) {
  EXPECT_THROW(gamma_quantile(0.0, 1.0, 1.0), Error);
  EXPECT_THROW(gamma_quantile(1.0, 1.0, 1.0), Error);
  EXPECT_THROW(gamma_quantile(0.5, -1.0, 1.0), Error);
  EXPECT_THROW(gamma_quantile(0.5, 1.0, 0.0), Error);
}

TEST(Linspace, EndpointsAndSpacing) {
  const auto g = linspace(0.0, 1.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), 0.0);
  EXPECT_DOUBLE_EQ(g.back(), 1.0);
  EXPECT_DOUBLE_EQ(g[2], 0.5);
  EXPECT_THROW(linspace(0.0, 1.0, 1), Error);
}

}  // namespace
}  // namespace cpm
