#include "cpm/common/json.hpp"

#include <gtest/gtest.h>

#include "cpm/common/error.hpp"
#include "cpm/common/rng.hpp"

namespace cpm {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-3.25").as_number(), -3.25);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(Json::parse("2.5E-2").as_number(), 0.025);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\nb")").as_string(), "a\nb");
  EXPECT_EQ(Json::parse(R"("q\"q")").as_string(), "q\"q");
  EXPECT_EQ(Json::parse(R"("back\\slash")").as_string(), "back\\slash");
  EXPECT_EQ(Json::parse(R"("tab\there")").as_string(), "tab\there");
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");  // é in UTF-8
}

TEST(JsonParse, ArraysAndObjects) {
  const Json arr = Json::parse("[1, 2, 3]");
  ASSERT_TRUE(arr.is_array());
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr.at(1).as_number(), 2.0);

  const Json obj = Json::parse(R"({"a": 1, "b": [true, null], "c": {"d": "x"}})");
  ASSERT_TRUE(obj.is_object());
  EXPECT_DOUBLE_EQ(obj.at("a").as_number(), 1.0);
  EXPECT_TRUE(obj.at("b").at(1).is_null());
  EXPECT_EQ(obj.at("c").at("d").as_string(), "x");
  EXPECT_TRUE(obj.contains("a"));
  EXPECT_FALSE(obj.contains("z"));
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_EQ(Json::parse("[]").size(), 0u);
  EXPECT_EQ(Json::parse("{}").size(), 0u);
  EXPECT_EQ(Json::parse("[ ]").size(), 0u);
}

TEST(JsonParse, WhitespaceTolerant) {
  const Json j = Json::parse("  {\n \"a\" :\t[ 1 ,2 ]\r\n}  ");
  EXPECT_EQ(j.at("a").size(), 2u);
}

TEST(JsonParse, ErrorsCarryPositions) {
  try {
    Json::parse("{\n\"a\": [1, }");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2:"), std::string::npos) << msg;  // line 2
  }
}

TEST(JsonParse, RejectsMalformed) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "01a", "\"unterminated",
        "[1] trailing", "{\"a\" 1}", "\"bad\\escape\\q\"", "nan", "--1"}) {
    EXPECT_THROW(Json::parse(bad), Error) << bad;
  }
}

TEST(JsonAccessors, TypeMismatchThrows) {
  const Json j = Json::parse("{\"a\": 1}");
  EXPECT_THROW(static_cast<void>(j.as_number()), Error);
  EXPECT_THROW(static_cast<void>(j.at("a").as_string()), Error);
  EXPECT_THROW(static_cast<void>(j.at("missing")), Error);
  EXPECT_THROW(static_cast<void>(j.at(std::size_t{0})), Error);
  EXPECT_THROW(static_cast<void>(Json::parse("3").size()), Error);
}

TEST(JsonAccessors, Fallbacks) {
  const Json j = Json::parse(R"({"a": 1, "s": "x"})");
  EXPECT_DOUBLE_EQ(j.number_or("a", 9.0), 1.0);
  EXPECT_DOUBLE_EQ(j.number_or("b", 9.0), 9.0);
  EXPECT_EQ(j.string_or("s", "d"), "x");
  EXPECT_EQ(j.string_or("t", "d"), "d");
}

TEST(JsonDump, RoundTripsCompact) {
  const std::string doc = R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null}})";
  const Json j = Json::parse(doc);
  EXPECT_EQ(Json::parse(j.dump()).dump(), j.dump());
  EXPECT_EQ(j.dump(), doc);
}

TEST(JsonDump, PrettyPrintParses) {
  const Json j = Json::parse(R"({"x": [1, {"y": "z"}], "w": 2})");
  const std::string pretty = j.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(Json::parse(pretty).dump(), j.dump());
}

TEST(JsonDump, NumbersRoundTrip) {
  for (double v : {0.0, 1.0, -17.0, 0.1, 1e-9, 123456.789, 3.141592653589793}) {
    const Json j(v);
    EXPECT_DOUBLE_EQ(Json::parse(j.dump()).as_number(), v) << j.dump();
  }
}

TEST(JsonDump, StringEscaping) {
  const Json j(std::string("a\"b\\c\nd"));
  EXPECT_EQ(Json::parse(j.dump()).as_string(), "a\"b\\c\nd");
}

TEST(JsonFuzz, RandomMutationsNeverCrash) {
  // Take a valid document and randomly mutate bytes; the parser must
  // either parse or throw cpm::Error — never crash or loop.
  const std::string base =
      R"({"tiers":[{"name":"a","servers":2}],"nums":[1,2.5,-3e2],"s":"x\ny"})";
  Rng rng(13579);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string doc = base;
    const int mutations = 1 + static_cast<int>(rng.below(4));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = static_cast<std::size_t>(rng.below(doc.size()));
      switch (rng.below(3)) {
        case 0:
          doc[pos] = static_cast<char>(rng.below(128));
          break;
        case 1:
          doc.erase(doc.begin() + static_cast<std::ptrdiff_t>(pos));
          break;
        default:
          doc.insert(doc.begin() + static_cast<std::ptrdiff_t>(pos),
                     static_cast<char>(rng.below(128)));
          break;
      }
      if (doc.empty()) doc.assign(1, '0');
    }
    try {
      const Json j = Json::parse(doc);
      // If it parsed, dumping and reparsing must agree.
      EXPECT_EQ(Json::parse(j.dump()).dump(), j.dump());
    } catch (const Error&) {
      // Expected for most mutations.
    }
  }
}

TEST(JsonFuzz, RandomGarbageNeverCrashes) {
  Rng rng(8642);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string doc;
    const auto len = rng.below(64);
    for (std::uint64_t i = 0; i < len; ++i)
      doc.push_back(static_cast<char>(rng.below(256)));
    try {
      (void)Json::parse(doc);
    } catch (const Error&) {
    }
  }
}

TEST(JsonBuild, ProgrammaticConstruction) {
  JsonObject obj;
  obj["n"] = 3;
  obj["arr"] = Json(JsonArray{Json(1.0), Json("two")});
  const Json j(std::move(obj));
  EXPECT_DOUBLE_EQ(j.at("n").as_number(), 3.0);
  EXPECT_EQ(j.at("arr").at(1).as_string(), "two");
}

}  // namespace
}  // namespace cpm
