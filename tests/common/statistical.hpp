// Statistical acceptance-test helpers shared across test suites.
//
// Simulation-vs-analytic agreement checks used to pin a fixed relative
// tolerance (EXPECT_NEAR(sim, analytic, 0.03 * analytic)), which conflates
// two different error sources: replication noise (shrinks with more reps)
// and model error (the decomposition approximation, which does not). These
// helpers split them: the replication noise is taken from the Student-t
// confidence interval that sim::replicate already computes over the fixed
// seed substreams, and the analytic target must fall inside that interval
// widened by an explicit model-error allowance.
//
// False-positive budget: every assertion is deterministic once the seed is
// fixed — a green check stays green forever. The residual risk is at
// PINNING time: with 95% intervals, each new assertion has a ~5% chance
// that its fixed-seed draw lands outside the interval even though the
// analytic value is correct (before the model-error slack, which pushes
// the real rate well below that). The integration suite keeps the number
// of such assertions small (currently < 10, i.e. an expected < 0.5
// marginal draws at pin time); if one fires on a fresh assertion, widen
// the model-error term only with a reason, or raise replications.
#pragma once

#include <gtest/gtest.h>

#include <cmath>

#include "cpm/common/stats.hpp"

namespace cpm::testing {

/// Does `target` fall inside `ci` widened by rel_model_error * |target|?
/// Use rel_model_error for KNOWN systematic bias (e.g. the queueing-network
/// decomposition's few-percent error at high load), not as a fudge factor
/// for noise — noise belongs to the interval.
inline ::testing::AssertionResult AgreesWithCi(const ConfidenceInterval& ci,
                                               double target,
                                               double rel_model_error) {
  const double slack = std::abs(target) * rel_model_error;
  const double lo = ci.lo() - slack;
  const double hi = ci.hi() + slack;
  if (lo <= target && target <= hi)
    return ::testing::AssertionSuccess()
           << "target " << target << " inside [" << lo << ", " << hi << "]";
  return ::testing::AssertionFailure()
         << "target " << target << " outside CI [" << ci.lo() << ", "
         << ci.hi() << "] even with model-error slack " << slack << " ([" << lo
         << ", " << hi << "])";
}

/// One-sided variant: `value` must not exceed `bound` by more than the
/// interval's half-width plus the model-error allowance.
inline ::testing::AssertionResult BelowWithSlack(const ConfidenceInterval& ci,
                                                 double bound,
                                                 double rel_model_error) {
  const double limit = bound * (1.0 + rel_model_error) + ci.half_width;
  if (ci.mean <= limit)
    return ::testing::AssertionSuccess()
           << "mean " << ci.mean << " <= " << limit;
  return ::testing::AssertionFailure()
         << "mean " << ci.mean << " exceeds bound " << bound
         << " beyond half-width " << ci.half_width << " + slack ("
         << limit << ")";
}

}  // namespace cpm::testing
