#include "cpm/common/mutex.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

namespace cpm {
namespace {

TEST(Mutex, LockUnlockRoundTrips) {
  Mutex mutex;
  mutex.lock();
  mutex.unlock();
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(Mutex, TryLockFailsWhileHeld) {
  Mutex mutex;
  const MutexLock lock(mutex);
  // A second thread cannot take the mutex while the scoped lock holds it.
  bool acquired = true;
  std::thread probe([&] { acquired = mutex.try_lock(); });
  probe.join();
  EXPECT_FALSE(acquired);
}

TEST(MutexLock, GuardsCriticalSectionAcrossThreads) {
  Mutex mutex;
  long counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        const MutexLock lock(mutex);
        ++counter;
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 40000);
}

TEST(FirstError, EmptyIsSilent) {
  FirstError error;
  EXPECT_FALSE(error.has_error());
  EXPECT_NO_THROW(error.rethrow_if_set());
}

TEST(FirstError, KeepsOnlyTheFirstCapture) {
  FirstError error;
  try {
    throw std::runtime_error("first");
  } catch (...) {
    error.capture_current();
  }
  try {
    throw std::runtime_error("second");
  } catch (...) {
    error.capture_current();
  }
  EXPECT_TRUE(error.has_error());
  EXPECT_THROW(
      {
        try {
          error.rethrow_if_set();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "first");
          throw;
        }
      },
      std::runtime_error);
}

TEST(FirstError, ConcurrentCapturesStoreExactlyOne) {
  FirstError error;
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&error, t] {
      try {
        throw std::runtime_error("worker " + std::to_string(t));
      } catch (...) {
        error.capture_current();
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_TRUE(error.has_error());
  EXPECT_THROW(error.rethrow_if_set(), std::runtime_error);
  // Rethrowing does not consume the stored error: replays see the same one.
  EXPECT_THROW(error.rethrow_if_set(), std::runtime_error);
}

}  // namespace
}  // namespace cpm
