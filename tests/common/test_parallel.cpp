#include "cpm/common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cpm {
namespace {

TEST(ParallelForIndex, RunsEveryIndexExactlyOnce) {
  constexpr std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  const unsigned used = parallel_for_index(n, 4, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_GE(used, 1u);
  EXPECT_LE(used, 4u);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelForIndex, ZeroTasksIsANoOp) {
  int calls = 0;
  const unsigned used = parallel_for_index(0, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(used, 1u);
}

TEST(ParallelForIndex, NeverSpawnsMoreThreadsThanTasks) {
  // 3 tasks, 64 threads requested: at most 3 workers may participate.
  const unsigned used = parallel_for_index(3, 64, [](std::size_t) {});
  EXPECT_LE(used, 3u);
}

TEST(ParallelForIndex, ZeroThreadsMeansHardwareConcurrency) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned used = parallel_for_index(100, 0, [](std::size_t) {});
  EXPECT_LE(used, hw);
}

TEST(ParallelForIndex, SingleThreadDegradesToPlainLoop) {
  std::vector<std::size_t> order;
  const unsigned used = parallel_for_index(5, 1, [&](std::size_t i) {
    order.push_back(i);  // no lock needed: caller is the only worker
  });
  EXPECT_EQ(used, 1u);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForIndex, ResultsLandInIndexAddressedSlots) {
  constexpr std::size_t n = 2048;
  std::vector<std::size_t> out(n, 0);
  parallel_for_index(n, 8, [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelForIndex, FirstExceptionPropagatesToCaller) {
  EXPECT_THROW(
      parallel_for_index(1000, 4,
                         [](std::size_t i) {
                           if (i == 417) throw std::runtime_error("task 417 failed");
                         }),
      std::runtime_error);
}

TEST(ParallelForIndex, ExceptionAbortsOutstandingWork) {
  // After a task throws, workers stop claiming; far fewer than n tasks
  // should run when the very first claimed index throws.
  std::atomic<int> ran{0};
  try {
    parallel_for_index(100000, 2, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("abort");
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_LT(ran.load(), 100000);
}

TEST(ParallelForIndex, StealingDrainsImbalancedSlices) {
  // Make worker 0's slice artificially heavy so other workers must steal
  // to finish; all indices still run exactly once.
  constexpr std::size_t n = 256;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_index(n, 4, [&](std::size_t i) {
    if (i < 8) {  // heavy head of the range
      volatile double x = 0;
      for (int k = 0; k < 200000; ++k) x = x + 1.0;
    }
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  int total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, static_cast<int>(n));
}

}  // namespace
}  // namespace cpm
