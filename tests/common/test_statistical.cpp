// The statistical acceptance helpers must themselves be trustworthy: a
// target inside the widened interval passes, one outside fails, and the
// slack scales with the target, not the interval.
#include "statistical.hpp"

#include <gtest/gtest.h>

namespace cpm {
namespace {

using testing::AgreesWithCi;
using testing::BelowWithSlack;

TEST(Statistical, TargetInsideIntervalAgrees) {
  const ConfidenceInterval ci{10.0, 0.5};
  EXPECT_TRUE(AgreesWithCi(ci, 10.3, 0.0));
  EXPECT_TRUE(AgreesWithCi(ci, 9.5, 0.0));
  EXPECT_TRUE(AgreesWithCi(ci, 10.5, 0.0));
}

TEST(Statistical, TargetOutsideIntervalFailsWithoutSlack) {
  const ConfidenceInterval ci{10.0, 0.5};
  EXPECT_FALSE(AgreesWithCi(ci, 10.6, 0.0));
  EXPECT_FALSE(AgreesWithCi(ci, 9.2, 0.0));
}

TEST(Statistical, ModelErrorSlackScalesWithTarget) {
  const ConfidenceInterval ci{10.0, 0.0};
  // 3% of 10.6 = 0.318 > gap 0.6? No: slack must rescue only targets
  // within rel * |target| of the interval edge.
  EXPECT_TRUE(AgreesWithCi(ci, 10.2, 0.03));   // gap 0.2 <= 0.306
  EXPECT_FALSE(AgreesWithCi(ci, 11.0, 0.03));  // gap 1.0 > 0.33
}

TEST(Statistical, FailureMessageNamesTheInterval) {
  const ConfidenceInterval ci{10.0, 0.5};
  const auto result = AgreesWithCi(ci, 20.0, 0.01);
  ASSERT_FALSE(result);
  const std::string message = result.message();
  EXPECT_NE(message.find("outside CI"), std::string::npos);
}

TEST(Statistical, BelowWithSlackAcceptsWithinNoise) {
  const ConfidenceInterval ci{1.02, 0.05};
  EXPECT_TRUE(BelowWithSlack(ci, 1.0, 0.0));   // within half-width
  EXPECT_TRUE(BelowWithSlack(ci, 1.0, 0.05));
}

TEST(Statistical, BelowWithSlackRejectsClearExcess) {
  const ConfidenceInterval ci{1.5, 0.05};
  EXPECT_FALSE(BelowWithSlack(ci, 1.0, 0.05));
}

}  // namespace
}  // namespace cpm
