#include "cpm/common/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "cpm/common/error.hpp"
#include "cpm/common/rng.hpp"

namespace cpm {
namespace {

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_DOUBLE_EQ(rs.mean(), 6.2);
  // Sample variance with n-1: sum (x - 6.2)^2 / 4 = 148.8 / 4
  double ss = 0.0;
  for (double x : xs) ss += (x - 6.2) * (x - 6.2);
  EXPECT_NEAR(rs.variance(), ss / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 16.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(5);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    whole.add(x);
    (i < 400 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(TimeWeightedStats, PiecewiseConstantAverage) {
  TimeWeightedStats tw;
  tw.start(0.0, 1.0);
  tw.update(2.0, 3.0);  // value 1 on [0,2)
  tw.update(5.0, 0.0);  // value 3 on [2,5)
  tw.finish(10.0);      // value 0 on [5,10)
  // integral = 2*1 + 3*3 + 5*0 = 11 over 10 time units.
  EXPECT_NEAR(tw.time_average(), 1.1, 1e-12);
  EXPECT_NEAR(tw.integral(), 11.0, 1e-12);
}

TEST(TimeWeightedStats, ResetDiscardsHistory) {
  TimeWeightedStats tw;
  tw.start(0.0, 100.0);
  tw.update(10.0, 2.0);
  tw.reset_at(10.0);  // warm-up deletion
  tw.finish(20.0);
  EXPECT_NEAR(tw.time_average(), 2.0, 1e-12);
}

TEST(TimeWeightedStats, RejectsTimeTravel) {
  TimeWeightedStats tw;
  tw.start(5.0, 1.0);
  EXPECT_THROW(tw.update(4.0, 2.0), Error);
}

TEST(P2Quantile, SmallSamplesAreExact) {
  P2Quantile q(0.5);
  q.add(3.0);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);
  q.add(1.0);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);  // median of {1,3}
}

TEST(P2Quantile, TracksUniformQuantiles) {
  Rng rng(99);
  for (double target : {0.5, 0.9, 0.95}) {
    P2Quantile q(target);
    for (int i = 0; i < 100000; ++i) q.add(rng.uniform01());
    EXPECT_NEAR(q.value(), target, 0.01) << "quantile " << target;
  }
}

TEST(P2Quantile, TracksExponentialP95) {
  Rng rng(101);
  P2Quantile q(0.95);
  for (int i = 0; i < 200000; ++i) q.add(rng.exponential(1.0));
  // True p95 of Exp(1) is -ln(0.05) ~ 2.9957.
  EXPECT_NEAR(q.value(), 2.9957, 0.08);
}

TEST(P2Quantile, RejectsDegenerateQuantile) {
  EXPECT_THROW(P2Quantile(0.0), Error);
  EXPECT_THROW(P2Quantile(1.0), Error);
}

TEST(BatchMeans, GroupsCorrectly) {
  BatchMeans bm(3);
  for (int i = 1; i <= 10; ++i) bm.add(i);  // batches {1,2,3},{4,5,6},{7,8,9}
  ASSERT_EQ(bm.completed_batches(), 3u);
  EXPECT_DOUBLE_EQ(bm.batch_means()[0], 2.0);
  EXPECT_DOUBLE_EQ(bm.batch_means()[1], 5.0);
  EXPECT_DOUBLE_EQ(bm.batch_means()[2], 8.0);
  EXPECT_DOUBLE_EQ(bm.grand_mean(), 5.0);
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.95), 1.644854, 1e-5);
  EXPECT_NEAR(normal_quantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.999), 3.090232, 1e-5);
}

TEST(TCritical, MatchesTables) {
  // Two-sided 95%: t_{df,0.975}.
  EXPECT_NEAR(t_critical(1, 0.95), 12.706, 1e-3);
  EXPECT_NEAR(t_critical(5, 0.95), 2.571, 1e-3);
  EXPECT_NEAR(t_critical(10, 0.95), 2.228, 1e-3);
  EXPECT_NEAR(t_critical(30, 0.95), 2.042, 5e-3);
  EXPECT_NEAR(t_critical(100, 0.95), 1.984, 5e-3);
  // 99% level for moderate df.
  EXPECT_NEAR(t_critical(20, 0.99), 2.845, 2e-2);
}

TEST(ConfidenceIntervalTest, CoversTrueMean) {
  // With many repetitions, a 95% CI over normal samples should contain the
  // true mean ~95% of the time.
  Rng rng(2024);
  int covered = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> xs(20);
    for (auto& x : xs) x = rng.normal(10.0, 4.0);
    const auto ci = confidence_interval(xs, 0.95);
    if (ci.lo() <= 10.0 && 10.0 <= ci.hi()) ++covered;
  }
  const double coverage = static_cast<double>(covered) / trials;
  EXPECT_GT(coverage, 0.90);
  EXPECT_LT(coverage, 0.99);
}

TEST(ConfidenceIntervalTest, SingleValueHasNoWidth) {
  const auto ci = confidence_interval({5.0});
  EXPECT_DOUBLE_EQ(ci.mean, 5.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(ConfidenceIntervalTest, EmptyIsZero) {
  const auto ci = confidence_interval({});
  EXPECT_DOUBLE_EQ(ci.mean, 0.0);
}

TEST(ConfidenceIntervalTest, RelativeWidth) {
  ConfidenceInterval ci;
  ci.mean = 10.0;
  ci.half_width = 0.5;
  EXPECT_DOUBLE_EQ(ci.relative(), 0.05);
  ci.mean = 0.0;
  EXPECT_TRUE(std::isinf(ci.relative()));
}

}  // namespace
}  // namespace cpm
