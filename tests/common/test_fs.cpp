#include "cpm/common/fs.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <string>

namespace cpm {
namespace {

namespace stdfs = std::filesystem;

std::string current_test_name() {
  return testing::UnitTest::GetInstance()->current_test_info()->name();
}

class RealFsTest : public testing::Test {
 protected:
  std::string dir_ = testing::TempDir() + "/cpm-fs-test-" + current_test_name();

  void SetUp() override { stdfs::remove_all(dir_); }
  void TearDown() override { stdfs::remove_all(dir_); }

  FileSystem& fs_ = real_filesystem();
};

TEST_F(RealFsTest, WriteAtomicThenReadRoundTrips) {
  const std::string path = dir_ + "/a/b/out.txt";
  fs_.write_atomic(path, "hello\n");
  EXPECT_EQ(fs_.read(path), "hello\n");
}

TEST_F(RealFsTest, WriteAtomicCreatesParentDirectories) {
  const std::string path = dir_ + "/deep/ly/nested/file";
  fs_.write_atomic(path, "x");
  EXPECT_TRUE(fs_.exists(path));
  EXPECT_TRUE(fs_.exists(dir_ + "/deep/ly"));
}

TEST_F(RealFsTest, WriteAtomicLeavesNoTempFileBehind) {
  fs_.write_atomic(dir_ + "/out.txt", "payload");
  const auto files = fs_.list_files(dir_);
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files[0], dir_ + "/out.txt");
}

TEST_F(RealFsTest, WriteAtomicOverwrites) {
  const std::string path = dir_ + "/out.txt";
  fs_.write_atomic(path, "old");
  fs_.write_atomic(path, "new");
  EXPECT_EQ(fs_.read(path), "new");
}

TEST_F(RealFsTest, ReadMissingFileIsPermanent) {
  try {
    fs_.read(dir_ + "/nope");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kPermanent);
    EXPECT_NE(std::string(e.what()).find("nope"), std::string::npos);
  }
}

TEST_F(RealFsTest, AppendCreatesAndAccumulates) {
  const std::string path = dir_ + "/log";
  fs_.append(path, "one");
  fs_.append(path, "two");
  EXPECT_EQ(fs_.read(path), "onetwo");
}

TEST_F(RealFsTest, RemoveIsIdempotent) {
  const std::string path = dir_ + "/gone";
  fs_.write_atomic(path, "x");
  fs_.remove(path);
  EXPECT_FALSE(fs_.exists(path));
  EXPECT_NO_THROW(fs_.remove(path));  // missing is not an error
}

TEST_F(RealFsTest, ListFilesIsRecursiveAndSorted) {
  fs_.write_atomic(dir_ + "/b.txt", "1");
  fs_.write_atomic(dir_ + "/sub/a.txt", "2");
  fs_.write_atomic(dir_ + "/sub/c.txt", "3");
  const auto files = fs_.list_files(dir_);
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0], dir_ + "/b.txt");
  EXPECT_EQ(files[1], dir_ + "/sub/a.txt");
  EXPECT_EQ(files[2], dir_ + "/sub/c.txt");
}

TEST_F(RealFsTest, ListFilesOnMissingDirectoryIsEmpty) {
  EXPECT_TRUE(fs_.list_files(dir_ + "/never").empty());
}

TEST(ClassifyErrno, TransientVsPermanent) {
  EXPECT_EQ(classify_errno(EIO), IoErrorKind::kTransient);
  EXPECT_EQ(classify_errno(EINTR), IoErrorKind::kTransient);
  EXPECT_EQ(classify_errno(EAGAIN), IoErrorKind::kTransient);
  EXPECT_EQ(classify_errno(EMFILE), IoErrorKind::kTransient);
  EXPECT_EQ(classify_errno(ENOENT), IoErrorKind::kPermanent);
  EXPECT_EQ(classify_errno(EACCES), IoErrorKind::kPermanent);
  EXPECT_EQ(classify_errno(ENOSPC), IoErrorKind::kPermanent);
}

TEST(IoErrorKindName, StableNames) {
  EXPECT_STREQ(io_error_kind_name(IoErrorKind::kTransient), "transient");
  EXPECT_STREQ(io_error_kind_name(IoErrorKind::kPermanent), "permanent");
  EXPECT_STREQ(io_error_kind_name(IoErrorKind::kCorrupt), "corrupt");
}

TEST(IoErrorType, IsACpmError) {
  // Existing catch (const cpm::Error&) sites keep working.
  try {
    throw IoError(IoErrorKind::kCorrupt, "bad bytes");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "bad bytes");
  }
}

}  // namespace
}  // namespace cpm
