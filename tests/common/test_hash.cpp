#include "cpm/common/hash.hpp"

#include <gtest/gtest.h>

#include <string>

namespace cpm {
namespace {

// FIPS 180-4 / NIST CAVP reference vectors.
TEST(Sha256, EmptyMessage) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                       "nopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.hex_digest(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// Messages straddling the 64-byte block and 56-byte padding boundaries
// are the classic implementation traps.
TEST(Sha256, PaddingBoundaries) {
  for (const std::size_t n : {55u, 56u, 57u, 63u, 64u, 65u}) {
    const std::string msg(n, 'x');
    Sha256 one_shot;
    one_shot.update(msg);
    Sha256 byte_wise;
    for (char c : msg) byte_wise.update(&c, 1);
    EXPECT_EQ(one_shot.hex_digest(), byte_wise.hex_digest())
        << "length " << n;
  }
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string text = "power and performance management";
  Sha256 h;
  h.update(text.substr(0, 7));
  h.update(text.substr(7));
  EXPECT_EQ(h.hex_digest(), sha256_hex(text));
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(sha256_hex("a"), sha256_hex("b"));
  EXPECT_NE(sha256_hex("abc"), sha256_hex("abd"));
  EXPECT_EQ(sha256_hex("same"), sha256_hex("same"));
}

TEST(Sha256, HexDigestShape) {
  const std::string hex = sha256_hex("anything");
  ASSERT_EQ(hex.size(), 64u);
  for (char c : hex)
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
}

}  // namespace
}  // namespace cpm
