#include "cpm/common/distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "cpm/common/error.hpp"
#include "cpm/common/stats.hpp"

namespace cpm {
namespace {

TEST(Distribution, DeterministicMoments) {
  const auto d = Distribution::deterministic(3.0);
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
  EXPECT_DOUBLE_EQ(d.variance(), 0.0);
  EXPECT_DOUBLE_EQ(d.scv(), 0.0);
  EXPECT_DOUBLE_EQ(d.second_moment(), 9.0);
}

TEST(Distribution, ExponentialMoments) {
  const auto d = Distribution::exponential(2.0);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
  EXPECT_DOUBLE_EQ(d.variance(), 4.0);
  EXPECT_DOUBLE_EQ(d.scv(), 1.0);
}

TEST(Distribution, ErlangScvIsOneOverK) {
  for (int k = 1; k <= 10; ++k) {
    const auto d = Distribution::erlang(k, 5.0);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_NEAR(d.scv(), 1.0 / k, 1e-12);
  }
}

TEST(Distribution, HyperExpMatchesTargetScv) {
  for (double scv : {1.5, 2.0, 4.0, 10.0}) {
    const auto d = Distribution::hyper_exp2(3.0, scv);
    EXPECT_NEAR(d.mean(), 3.0, 1e-12);
    EXPECT_NEAR(d.scv(), scv, 1e-9);
  }
}

TEST(Distribution, LognormalMatchesTargetScv) {
  const auto d = Distribution::lognormal(2.0, 3.0);
  EXPECT_NEAR(d.mean(), 2.0, 1e-12);
  EXPECT_NEAR(d.scv(), 3.0, 1e-9);
}

TEST(Distribution, ParetoMoments) {
  const auto d = Distribution::pareto(3.0, 6.0);
  EXPECT_NEAR(d.mean(), 6.0, 1e-12);
  // shape 3, mean 6 -> x_m = 4; E[X^2] = 3*16/(3-2) = 48; var = 12.
  EXPECT_NEAR(d.second_moment(), 48.0, 1e-9);
}

TEST(Distribution, UniformMoments) {
  const auto d = Distribution::uniform(1.0, 3.0);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
  EXPECT_NEAR(d.variance(), 4.0 / 12.0, 1e-12);
}

TEST(Distribution, FromMeanScvSelectsFamily) {
  EXPECT_EQ(Distribution::from_mean_scv(1.0, 0.0).kind(), DistKind::kDeterministic);
  EXPECT_EQ(Distribution::from_mean_scv(1.0, 0.25).kind(), DistKind::kGamma);
  EXPECT_EQ(Distribution::from_mean_scv(1.0, 1.0).kind(), DistKind::kExponential);
  EXPECT_EQ(Distribution::from_mean_scv(1.0, 2.0).kind(), DistKind::kHyperExp2);
}

TEST(Distribution, FromMeanScvMatchesMoments) {
  for (double scv : {0.0, 0.2, 0.5, 1.0, 2.0, 5.0}) {
    const auto d = Distribution::from_mean_scv(4.0, scv);
    EXPECT_NEAR(d.mean(), 4.0, 1e-12) << "scv=" << scv;
    EXPECT_NEAR(d.scv(), scv, 1e-9) << "scv=" << scv;
  }
}

TEST(Distribution, FactoryValidation) {
  EXPECT_THROW(Distribution::exponential(0.0), Error);
  EXPECT_THROW(Distribution::erlang(0, 1.0), Error);
  EXPECT_THROW(Distribution::hyper_exp2(1.0, 1.0), Error);  // needs scv > 1
  EXPECT_THROW(Distribution::pareto(2.0, 1.0), Error);      // needs shape > 2
  EXPECT_THROW(Distribution::uniform(3.0, 1.0), Error);
  EXPECT_THROW(Distribution::deterministic(-1.0), Error);
  EXPECT_THROW(Distribution::from_mean_scv(1.0, -0.5), Error);
}

// ---- property-style sweep: sampling reproduces the analytic moments -----

struct FamilyCase {
  std::string label;
  Distribution dist;
};

class SamplingMatchesMoments : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(SamplingMatchesMoments, MeanAndVariance) {
  const auto& fc = GetParam();
  Rng rng(12345);
  RunningStats stats;
  const int n = 400000;
  for (int i = 0; i < n; ++i) stats.add(fc.dist.sample(rng));
  // 4-sigma tolerance on the sample mean; heavy tails get extra headroom.
  const double sd = std::sqrt(fc.dist.variance() / n);
  EXPECT_NEAR(stats.mean(), fc.dist.mean(), std::max(4.0 * sd, 1e-12))
      << fc.label;
  if (fc.dist.kind() != DistKind::kPareto && fc.dist.kind() != DistKind::kLognormal) {
    EXPECT_NEAR(stats.variance(), fc.dist.variance(),
                0.05 * fc.dist.variance() + 1e-12)
        << fc.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, SamplingMatchesMoments,
    ::testing::Values(
        FamilyCase{"det", Distribution::deterministic(2.0)},
        FamilyCase{"exp", Distribution::exponential(0.5)},
        FamilyCase{"erlang4", Distribution::erlang(4, 2.0)},
        FamilyCase{"gamma0p4", Distribution::gamma(0.4, 1.0)},
        FamilyCase{"gamma2p5", Distribution::gamma(2.5, 3.0)},
        FamilyCase{"hyper2", Distribution::hyper_exp2(1.0, 4.0)},
        FamilyCase{"uniform", Distribution::uniform(0.5, 1.5)},
        FamilyCase{"lognormal", Distribution::lognormal(1.0, 2.0)},
        FamilyCase{"pareto", Distribution::pareto(3.5, 2.0)}),
    [](const auto& param_info) { return param_info.param.label; });

// ---- scaling preserves shape ---------------------------------------------

class ScalingPreservesScv : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(ScalingPreservesScv, ScvInvariantMeanExact) {
  const auto& fc = GetParam();
  for (double new_mean : {0.1, 1.0, 7.5}) {
    const Distribution scaled = fc.dist.scaled_to_mean(new_mean);
    EXPECT_NEAR(scaled.mean(), new_mean, 1e-9 * new_mean) << fc.label;
    EXPECT_NEAR(scaled.scv(), fc.dist.scv(), 1e-6 * (1.0 + fc.dist.scv()))
        << fc.label;
    EXPECT_EQ(scaled.kind(), fc.dist.kind()) << fc.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ScalingPreservesScv,
    ::testing::Values(
        FamilyCase{"det", Distribution::deterministic(2.0)},
        FamilyCase{"exp", Distribution::exponential(0.5)},
        FamilyCase{"erlang3", Distribution::erlang(3, 2.0)},
        FamilyCase{"gamma", Distribution::gamma(1.7, 3.0)},
        FamilyCase{"hyper", Distribution::hyper_exp2(1.0, 3.0)},
        FamilyCase{"uniform", Distribution::uniform(0.5, 1.5)},
        FamilyCase{"lognormal", Distribution::lognormal(1.0, 2.0)},
        FamilyCase{"pareto", Distribution::pareto(4.0, 2.0)}),
    [](const auto& param_info) { return param_info.param.label; });

TEST(Distribution, ThirdMomentsClosedForms) {
  // Deterministic: m^3.
  EXPECT_NEAR(Distribution::deterministic(2.0).third_moment(), 8.0, 1e-12);
  // Exponential mean m: 6 m^3.
  EXPECT_NEAR(Distribution::exponential(2.0).third_moment(), 48.0, 1e-12);
  // Erlang-k mean m: k(k+1)(k+2)/(k/m)^3.
  const auto e3 = Distribution::erlang(3, 1.0);
  EXPECT_NEAR(e3.third_moment(), 3.0 * 4.0 * 5.0 / 27.0, 1e-12);
  // Uniform [0, 2]: E[X^3] = 2^4 / (4*2) = 2.
  EXPECT_NEAR(Distribution::uniform(0.0, 2.0).third_moment(), 2.0, 1e-12);
  // Pareto with shape <= 3 has infinite third moment.
  EXPECT_TRUE(std::isinf(Distribution::pareto(2.5, 1.0).third_moment()));
  EXPECT_TRUE(std::isfinite(Distribution::pareto(3.5, 1.0).third_moment()));
}

TEST(Distribution, ThirdMomentMatchesSampling) {
  Rng rng(4242);
  for (const auto& d : {Distribution::exponential(1.0),
                        Distribution::erlang(4, 2.0),
                        Distribution::hyper_exp2(1.0, 2.0),
                        Distribution::uniform(0.5, 1.5)}) {
    double sum3 = 0.0;
    const int n = 500000;
    for (int i = 0; i < n; ++i) {
      const double x = d.sample(rng);
      sum3 += x * x * x;
    }
    const double est = sum3 / n;
    EXPECT_NEAR(est, d.third_moment(), 0.05 * d.third_moment()) << d.name();
  }
}

TEST(Distribution, SamplesAreNonNegative) {
  Rng rng(777);
  for (const auto& d :
       {Distribution::exponential(1.0), Distribution::hyper_exp2(1.0, 5.0),
        Distribution::gamma(0.3, 1.0), Distribution::pareto(2.5, 1.0),
        Distribution::lognormal(1.0, 4.0)}) {
    for (int i = 0; i < 10000; ++i) ASSERT_GE(d.sample(rng), 0.0) << d.name();
  }
}

}  // namespace
}  // namespace cpm
