// OnlineController decision logic, driven by synthetic snapshots so every
// branch is reached deterministically without a simulator in the loop:
// laziness at steady state, drift persistence, fault fast-path, slew
// limits, switching-cost accounting, shedding and last-known-good fallback.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "cpm/common/error.hpp"
#include "cpm/core/cpm.hpp"
#include "cpm/online/controller.hpp"

namespace cpm::online {
namespace {

using core::make_enterprise_model;

/// A snapshot consistent with "everything healthy at the nominal rates".
sim::ControlSnapshot healthy_snapshot(const core::ClusterModel& model,
                                      double time) {
  sim::ControlSnapshot snap;
  snap.time = time;
  snap.window = 10.0;
  const std::size_t tiers = model.num_tiers();
  const std::size_t classes = model.num_classes();
  snap.utilization.assign(tiers, 0.5);
  snap.queue_length.assign(tiers, 1.0);
  snap.servers.resize(tiers);
  for (std::size_t i = 0; i < tiers; ++i)
    snap.servers[i] = model.tiers()[i].servers;
  snap.arrival_rate.resize(classes);
  snap.window_completed.resize(classes);
  snap.window_blocked.assign(classes, 0);
  snap.window_within_sla.resize(classes);
  snap.window_mean_delay.assign(classes, 0.1);
  for (std::size_t k = 0; k < classes; ++k) {
    snap.arrival_rate[k] = model.classes()[k].rate.value();
    snap.window_completed[k] =
        static_cast<std::uint64_t>(model.classes()[k].rate.value() * snap.window);
    snap.window_within_sla[k] = snap.window_completed[k];
  }
  snap.window_energy_joules = units::joules(100.0);
  snap.admitted.assign(classes, 1);
  return snap;
}

ControllerOptions fast_options() {
  ControllerOptions o;
  o.estimator_windows = 2;
  o.drift_windows = 2;
  o.cooldown_windows = 2;
  o.levels = 5;
  o.size_servers = false;
  return o;
}

TEST(Controller, RejectsBadOptions) {
  const auto model = make_enterprise_model(0.5);
  ControllerOptions o;
  o.hysteresis = 0.0;
  EXPECT_THROW(OnlineController(model, o), Error);
  o = ControllerOptions{};
  o.rate_headroom = 0.9;
  EXPECT_THROW(OnlineController(model, o), Error);
  o = ControllerOptions{};
  o.sla_trigger = 1.5;
  EXPECT_THROW(OnlineController(model, o), Error);
  o = ControllerOptions{};
  o.levels = 1;
  EXPECT_THROW(OnlineController(model, o), Error);
}

TEST(Controller, SteadyStateMakesNoDecisions) {
  const auto model = make_enterprise_model(0.6);
  OnlineController ctl(model, fast_options());
  auto hook = ctl.hook();
  for (int w = 0; w < 10; ++w) {
    const auto decision = hook(healthy_snapshot(model, 10.0 * (w + 1)));
    EXPECT_TRUE(decision.tiers.empty());
    EXPECT_TRUE(decision.admit.empty());
  }
  EXPECT_EQ(ctl.reoptimizations(), 0u);
  EXPECT_DOUBLE_EQ(ctl.total_switching_cost().value(), 0.0);
  ASSERT_EQ(ctl.history().size(), 10u);
  for (const auto& rec : ctl.history()) {
    EXPECT_FALSE(rec.reoptimized);
    EXPECT_EQ(rec.reason, "");
  }
}

TEST(Controller, DriftNeedsPersistenceBeforeReplanning) {
  const auto model = make_enterprise_model(0.6);
  OnlineController ctl(model, fast_options());
  auto hook = ctl.hook();
  // Two nominal windows warm the estimators up without drifting.
  hook(healthy_snapshot(model, 10.0));
  hook(healthy_snapshot(model, 20.0));
  // Rates double: first out-of-band window must NOT replan (streak 1 of 2),
  // the second consecutive one must (reason "drift").
  auto high = healthy_snapshot(model, 30.0);
  for (auto& r : high.arrival_rate) r *= 2.0;
  hook(high);
  EXPECT_EQ(ctl.reoptimizations(), 0u);
  EXPECT_FALSE(ctl.history().back().reoptimized);
  high.time = 40.0;
  hook(high);
  EXPECT_EQ(ctl.reoptimizations(), 1u);
  EXPECT_TRUE(ctl.history().back().reoptimized);
  EXPECT_EQ(ctl.history().back().reason, "drift");
  // The new plan was computed for the headroom-inflated measured rates.
  high.time = 50.0;
  hook(high);
  EXPECT_EQ(ctl.reoptimizations(), 1u) << "cooldown must suppress a replan";
}

TEST(Controller, SlaDistressTriggersReplan) {
  const auto model = make_enterprise_model(0.6);
  auto opts = fast_options();
  opts.drift_windows = 2;
  OnlineController ctl(model, opts);
  auto hook = ctl.hook();
  hook(healthy_snapshot(model, 10.0));
  hook(healthy_snapshot(model, 20.0));
  // Rates stay nominal (no drift) but gold attainment collapses.
  auto bad = healthy_snapshot(model, 30.0);
  bad.window_within_sla[0] = bad.window_completed[0] / 2;
  hook(bad);
  EXPECT_EQ(ctl.reoptimizations(), 0u);
  bad.time = 40.0;
  hook(bad);
  EXPECT_EQ(ctl.reoptimizations(), 1u);
  EXPECT_EQ(ctl.history().back().reason, "sla");
}

TEST(Controller, FaultBypassesPersistenceAndReplansImmediately) {
  const auto model = make_enterprise_model(0.6);
  OnlineController ctl(model, fast_options());
  auto hook = ctl.hook();
  hook(healthy_snapshot(model, 10.0));
  // One window later the web tier has lost a server (2 -> 1): the very
  // same window must carry a "fault" replan, no streak required.
  auto faulty = healthy_snapshot(model, 20.0);
  faulty.servers[0] = 1;
  hook(faulty);
  EXPECT_EQ(ctl.reoptimizations(), 1u);
  EXPECT_EQ(ctl.history().back().reason, "fault");
}

TEST(Controller, ActuationRespectsSlewLimitsAndChargesSwitching) {
  const auto model = make_enterprise_model(0.7);
  auto opts = fast_options();
  opts.drift_windows = 1;
  opts.cooldown_windows = 0;
  opts.hysteresis = 0.05;
  opts.max_freq_step = units::hertz(0.1);
  OnlineController ctl(model, opts);
  auto hook = ctl.hook();

  std::vector<double> prev_freq = ctl.initial_frequencies();
  std::vector<int> prev_servers(model.num_tiers());
  for (std::size_t i = 0; i < model.num_tiers(); ++i)
    prev_servers[i] = model.tiers()[i].servers;

  double cost_sum = 0.0;
  for (int w = 0; w < 12; ++w) {
    auto snap = healthy_snapshot(model, 10.0 * (w + 1));
    // Halve the traffic: the re-plan wants lower frequencies, which the
    // actuator may only approach 0.1 per window.
    for (auto& r : snap.arrival_rate) r *= 0.5;
    for (std::size_t i = 0; i < prev_servers.size(); ++i)
      snap.servers[i] = prev_servers[i];
    hook(snap);
    const auto& rec = ctl.history().back();
    for (std::size_t i = 0; i < model.num_tiers(); ++i) {
      EXPECT_LE(std::abs(rec.actuated_servers[i] - prev_servers[i]),
                opts.max_server_step);
      EXPECT_LE(std::abs(rec.actuated_freq[i] - prev_freq[i]),
                opts.max_freq_step.value() + 1e-12);
    }
    prev_servers = rec.actuated_servers;
    prev_freq = rec.actuated_freq;
    cost_sum += rec.switching_cost_j.value();
  }
  EXPECT_GT(ctl.reoptimizations(), 0u);
  // Frequencies actually moved off the initial plan, and every change was
  // charged: per-window costs add up to the reported total.
  EXPECT_GT(ctl.total_switching_cost().value(), 0.0);
  EXPECT_DOUBLE_EQ(ctl.total_switching_cost().value(), cost_sum);
}

TEST(Controller, OverloadShedsLowestPriorityFirstNeverGold) {
  const auto model = make_enterprise_model(0.7);
  auto opts = fast_options();
  opts.drift_windows = 1;
  opts.cooldown_windows = 0;
  OnlineController ctl(model, opts);
  auto hook = ctl.hook();
  hook(healthy_snapshot(model, 10.0));
  hook(healthy_snapshot(model, 20.0));
  // 3x the nominal load on the fixed fleet is infeasible for the full
  // class mix; the controller must shed from the bottom of the priority
  // order and keep gold admitted.
  auto heavy = healthy_snapshot(model, 30.0);
  for (auto& r : heavy.arrival_rate) r *= 3.0;
  const auto decision = hook(heavy);
  const auto& rec = ctl.history().back();
  ASSERT_TRUE(rec.reoptimized);
  ASSERT_TRUE(rec.feasible) << "shedding should have restored feasibility";
  EXPECT_EQ(rec.admitted[0], 1) << "gold is never shed";
  EXPECT_EQ(rec.admitted[2], 0) << "bronze goes first";
  ASSERT_FALSE(decision.admit.empty());
  EXPECT_EQ(decision.admit[2], 0);
}

TEST(Controller, HopelessLoadFallsBackToLastKnownGoodPlan) {
  const auto model = make_enterprise_model(0.7);
  auto opts = fast_options();
  opts.drift_windows = 1;
  opts.cooldown_windows = 0;
  OnlineController ctl(model, opts);
  auto hook = ctl.hook();
  hook(healthy_snapshot(model, 10.0));
  hook(healthy_snapshot(model, 20.0));
  // Rates far beyond any tier's capacity: even gold alone is infeasible,
  // so the controller degrades to the last known-good plan instead of
  // actuating garbage.
  auto hopeless = healthy_snapshot(model, 30.0);
  for (auto& r : hopeless.arrival_rate) r = 500.0;
  hook(hopeless);
  const auto& rec = ctl.history().back();
  ASSERT_TRUE(rec.reoptimized);
  EXPECT_FALSE(rec.feasible);
  EXPECT_TRUE(rec.degraded);
  // The fallback is the initial (feasible) plan: full admission, the
  // model's own fleet as the target.
  for (std::size_t k = 0; k < model.num_classes(); ++k)
    EXPECT_EQ(rec.admitted[k], 1);
  for (std::size_t i = 0; i < model.num_tiers(); ++i)
    EXPECT_EQ(rec.target_servers[i], model.tiers()[i].servers);
}

}  // namespace
}  // namespace cpm::online
