// Determinism regressions: the cpm-online/v1 timeline must serialise
// byte-identically across runs with the same inputs, and replicate() must
// be bit-identical regardless of how many worker threads aggregate the
// same seeded substreams.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "cpm/core/cpm.hpp"
#include "cpm/online/scenario.hpp"
#include "cpm/online/timeline.hpp"

namespace cpm::online {
namespace {

Scenario small_scenario() {
  return scenario_from_json_text(R"({
    "schema": "cpm-scenario/v1",
    "horizon": 200, "window": 10, "seed": 99,
    "arrivals": [{"class": "bronze", "kind": "step", "at": 80, "factor": 1.5}],
    "faults": [{"time": 120, "tier": "web", "kind": "servers-delta",
                "value": -1}],
    "controller": {"hysteresis": 0.15, "drift_windows": 1,
                   "cooldown_windows": 0, "levels": 5, "size_servers": false}
  })");
}

TEST(OnlineDeterminism, TimelineIsByteIdenticalAcrossRuns) {
  const auto model = core::make_enterprise_model(0.6);
  const auto scenario = small_scenario();
  const auto a = run_online(model, scenario);
  const auto b = run_online(model, scenario);
  const std::string dump_a = a.timeline.dump(2);
  const std::string dump_b = b.timeline.dump(2);
  EXPECT_GT(dump_a.size(), 0u);
  EXPECT_EQ(dump_a, dump_b);
  EXPECT_EQ(a.reoptimizations, b.reoptimizations);
  EXPECT_EQ(a.windows.size(), b.windows.size());
}

TEST(OnlineDeterminism, DifferentSeedsChangeTheTimeline) {
  // Guard against the dump being identical for the trivial reason that
  // the seed is ignored.
  const auto model = core::make_enterprise_model(0.6);
  auto scenario = small_scenario();
  const auto a = run_online(model, scenario);
  scenario.seed = 100;
  const auto b = run_online(model, scenario);
  EXPECT_NE(a.timeline.dump(2), b.timeline.dump(2));
}

TEST(ReplicateDeterminism, BitIdenticalAcrossThreadCounts) {
  const auto model = core::make_enterprise_model(0.6);
  const auto cfg = model.to_sim_config(model.max_frequencies(), 20.0, 220.0, 5);

  sim::ReplicationOptions rep;
  rep.replications = 6;
  rep.threads = 1;
  const auto serial = sim::replicate(cfg, rep);

  std::vector<int> thread_counts = {2,
                                    static_cast<int>(
                                        std::thread::hardware_concurrency())};
  for (const int threads : thread_counts) {
    if (threads < 1) continue;
    rep.threads = threads;
    const auto parallel = sim::replicate(cfg, rep);
    EXPECT_EQ(serial.mean_e2e_delay.mean, parallel.mean_e2e_delay.mean)
        << threads << " threads";
    EXPECT_EQ(serial.mean_e2e_delay.half_width,
              parallel.mean_e2e_delay.half_width);
    EXPECT_EQ(serial.cluster_avg_power.mean, parallel.cluster_avg_power.mean);
    EXPECT_EQ(serial.cluster_avg_power.half_width,
              parallel.cluster_avg_power.half_width);
    ASSERT_EQ(serial.classes.size(), parallel.classes.size());
    for (std::size_t k = 0; k < serial.classes.size(); ++k) {
      EXPECT_EQ(serial.classes[k].mean_e2e_delay.mean,
                parallel.classes[k].mean_e2e_delay.mean);
      EXPECT_EQ(serial.classes[k].p95_e2e_delay.mean,
                parallel.classes[k].p95_e2e_delay.mean);
      EXPECT_EQ(serial.classes[k].total_completed,
                parallel.classes[k].total_completed);
    }
  }
}

}  // namespace
}  // namespace cpm::online
