// WindowedEstimator: the controller's only view of the workload, so its
// arithmetic is pinned exactly — EWMA seeding and recursion, sliding-mean
// bookkeeping, and warm-up gating.
#include <gtest/gtest.h>

#include "cpm/common/error.hpp"
#include "cpm/online/estimator.hpp"

namespace cpm::online {
namespace {

TEST(Estimator, RejectsBadParameters) {
  EXPECT_THROW(WindowedEstimator(0.0, 4), Error);
  EXPECT_THROW(WindowedEstimator(-0.1, 4), Error);
  EXPECT_THROW(WindowedEstimator(1.5, 4), Error);
  EXPECT_THROW(WindowedEstimator(0.5, 0), Error);
  EXPECT_NO_THROW(WindowedEstimator(1.0, 1));
}

TEST(Estimator, StartsAtZero) {
  WindowedEstimator e(0.5, 4);
  EXPECT_EQ(e.ewma(), 0.0);
  EXPECT_EQ(e.windowed_mean(), 0.0);
  EXPECT_EQ(e.observations(), 0u);
  EXPECT_FALSE(e.warmed_up());
}

TEST(Estimator, EwmaSeedsWithFirstSample) {
  // No phantom ramp-up from zero: the first observation IS the estimate.
  WindowedEstimator e(0.1, 4);
  e.observe(10.0);
  EXPECT_DOUBLE_EQ(e.ewma(), 10.0);
}

TEST(Estimator, EwmaRecursionIsExact) {
  WindowedEstimator e(0.25, 8);
  e.observe(8.0);
  e.observe(4.0);  // 0.25*4 + 0.75*8 = 7
  EXPECT_DOUBLE_EQ(e.ewma(), 7.0);
  e.observe(12.0);  // 0.25*12 + 0.75*7 = 8.25
  EXPECT_DOUBLE_EQ(e.ewma(), 8.25);
}

TEST(Estimator, WindowedMeanSlides) {
  WindowedEstimator e(0.5, 3);
  e.observe(3.0);
  EXPECT_DOUBLE_EQ(e.windowed_mean(), 3.0);
  e.observe(6.0);
  EXPECT_DOUBLE_EQ(e.windowed_mean(), 4.5);
  e.observe(9.0);
  EXPECT_DOUBLE_EQ(e.windowed_mean(), 6.0);
  // The oldest sample (3.0) falls out of the window.
  e.observe(12.0);
  EXPECT_DOUBLE_EQ(e.windowed_mean(), 9.0);
}

TEST(Estimator, WarmsUpAfterFullWindow) {
  WindowedEstimator e(0.5, 3);
  e.observe(1.0);
  e.observe(1.0);
  EXPECT_FALSE(e.warmed_up());
  e.observe(1.0);
  EXPECT_TRUE(e.warmed_up());
  e.observe(1.0);
  EXPECT_TRUE(e.warmed_up());
  EXPECT_EQ(e.observations(), 4u);
}

TEST(Estimator, AlphaOneTracksLastSample) {
  WindowedEstimator e(1.0, 2);
  e.observe(5.0);
  e.observe(2.0);
  EXPECT_DOUBLE_EQ(e.ewma(), 2.0);
}

}  // namespace
}  // namespace cpm::online
