// cpm-scenario/v1 parsing, schedule construction and model resolution —
// including the exact error messages, which are part of the contract
// (cpmctl surfaces them verbatim to the user).
#include <gtest/gtest.h>

#include <string>

#include "cpm/common/error.hpp"
#include "cpm/core/cpm.hpp"
#include "cpm/online/scenario.hpp"

namespace cpm::online {
namespace {

std::string error_of(const std::string& text) {
  try {
    (void)scenario_from_json_text(text);
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

TEST(ScenarioParse, DefaultsWhenFieldsAbsent) {
  const auto s = scenario_from_json_text("{}");
  EXPECT_DOUBLE_EQ(s.horizon, 1000.0);
  EXPECT_DOUBLE_EQ(s.warmup, 0.0);
  EXPECT_DOUBLE_EQ(s.window, 10.0);
  EXPECT_EQ(s.seed, 1u);
  EXPECT_TRUE(s.arrivals.empty());
  EXPECT_TRUE(s.faults.empty());
  EXPECT_DOUBLE_EQ(s.controller.hysteresis, ControllerOptions{}.hysteresis);
}

TEST(ScenarioParse, FullDocumentRoundTrips) {
  const auto s = scenario_from_json_text(R"({
    "schema": "cpm-scenario/v1",
    "horizon": 600, "warmup": 50, "window": 5, "seed": 7,
    "arrivals": [
      {"class": "gold", "kind": "step", "at": 200, "factor": 1.8},
      {"class": "silver", "kind": "ramp", "from": 100, "to": 400, "factor": 2.0},
      {"class": "bronze", "kind": "flash", "spike_start": 300,
       "spike_duration": 60, "factor": 3.0}
    ],
    "faults": [
      {"time": 250, "tier": "db", "kind": "servers-delta", "value": -1},
      {"time": 400, "tier": "db", "kind": "set-capacity", "value": 10}
    ],
    "controller": {"hysteresis": 0.1, "cooldown_windows": 0,
                   "rate_headroom": 1.3, "size_servers": false}
  })");
  EXPECT_DOUBLE_EQ(s.horizon, 600.0);
  EXPECT_DOUBLE_EQ(s.warmup, 50.0);
  EXPECT_DOUBLE_EQ(s.window, 5.0);
  EXPECT_EQ(s.seed, 7u);
  ASSERT_EQ(s.arrivals.size(), 3u);
  EXPECT_EQ(s.arrivals[0].kind, ArrivalShape::Kind::kStep);
  EXPECT_DOUBLE_EQ(s.arrivals[0].at, 200.0);
  EXPECT_EQ(s.arrivals[1].kind, ArrivalShape::Kind::kRamp);
  EXPECT_EQ(s.arrivals[2].kind, ArrivalShape::Kind::kFlash);
  ASSERT_EQ(s.faults.size(), 2u);
  EXPECT_EQ(s.faults[0].kind, sim::FaultKind::kServersDelta);
  EXPECT_EQ(s.faults[0].value, -1);
  EXPECT_EQ(s.faults[1].kind, sim::FaultKind::kSetCapacity);
  EXPECT_DOUBLE_EQ(s.controller.hysteresis, 0.1);
  EXPECT_EQ(s.controller.cooldown_windows, 0);
  EXPECT_DOUBLE_EQ(s.controller.rate_headroom, 1.3);
  EXPECT_FALSE(s.controller.size_servers);
}

TEST(ScenarioParse, ExactErrorMessages) {
  EXPECT_EQ(error_of("[1, 2]"), "scenario: document must be an object");
  EXPECT_EQ(error_of(R"({"schema": "cpm-scenario/v2"})"),
            "scenario: unsupported schema 'cpm-scenario/v2'");
  EXPECT_EQ(error_of(R"({"horizon": 0})"),
            "scenario: horizon must be positive");
  EXPECT_EQ(error_of(R"({"window": -1})"),
            "scenario: window must be positive");
  EXPECT_EQ(error_of(R"({"horizon": 100, "warmup": 100})"),
            "scenario: warmup must be in [0, horizon)");
  EXPECT_EQ(error_of(R"({"arrivals": [{"kind": "step"}]})"),
            "scenario: arrivals entry needs 'class'");
  EXPECT_EQ(error_of(R"({"arrivals": [{"class": "gold", "kind": "sine"}]})"),
            "scenario: unknown arrival kind 'sine' "
            "(expected constant | step | ramp | diurnal | flash)");
  EXPECT_EQ(error_of(R"({"arrivals": [{"class": "gold", "kind": "step"}]})"),
            "scenario: step arrival needs 'at'");
  EXPECT_EQ(error_of(R"({"arrivals": [{"class": "gold", "kind": "ramp",
                                       "from": 10, "to": 5}]})"),
            "scenario: ramp needs to > from");
  EXPECT_EQ(error_of(R"({"arrivals": [{"class": "g"}, {"class": "g"}]})"),
            "scenario: class 'g' has multiple arrivals entries");
  EXPECT_EQ(error_of(R"({"faults": [{"tier": "db", "kind": "set-servers",
                                     "value": 1}]})"),
            "scenario: fault needs 'time'");
  EXPECT_EQ(error_of(R"({"faults": [{"time": 1, "tier": "db",
                                     "kind": "meteor", "value": 1}]})"),
            "scenario: unknown fault kind 'meteor' "
            "(expected servers-delta | set-servers | set-capacity)");
  EXPECT_EQ(error_of(R"({"faults": [{"time": -5, "tier": "db",
                                     "kind": "set-servers", "value": 1}]})"),
            "scenario: fault time must be >= 0");
}

TEST(BuildSchedule, ConstantScalesTheBaseRate) {
  ArrivalShape shape;
  shape.kind = ArrivalShape::Kind::kConstant;
  shape.factor = 1.5;
  const auto sched = build_schedule(shape, units::per_second(10.0), 1000.0);
  EXPECT_DOUBLE_EQ(sched.rate_at(0.0).value(), 15.0);
  EXPECT_DOUBLE_EQ(sched.rate_at(999.0).value(), 15.0);
}

TEST(BuildSchedule, StepSwitchesAtTheStepTime) {
  ArrivalShape shape;
  shape.kind = ArrivalShape::Kind::kStep;
  shape.at = 500.0;
  shape.factor = 2.0;
  const auto sched = build_schedule(shape, units::per_second(10.0), 1000.0);
  EXPECT_DOUBLE_EQ(sched.rate_at(100.0).value(), 10.0);
  EXPECT_DOUBLE_EQ(sched.rate_at(900.0).value(), 20.0);
  EXPECT_DOUBLE_EQ(sched.max_rate().value(), 20.0);
}

TEST(BuildSchedule, RampInterpolatesBetweenEndpoints) {
  ArrivalShape shape;
  shape.kind = ArrivalShape::Kind::kRamp;
  shape.from = 200.0;
  shape.to = 800.0;
  shape.factor = 3.0;
  const auto sched = build_schedule(shape, units::per_second(10.0), 1000.0);
  EXPECT_DOUBLE_EQ(sched.rate_at(0.0).value(), 10.0);
  EXPECT_DOUBLE_EQ(sched.rate_at(999.0).value(), 30.0);
  const double mid = sched.rate_at(500.0).value();
  EXPECT_GT(mid, 15.0);
  EXPECT_LT(mid, 25.0);
}

TEST(BuildSchedule, FlashCrowdSpikesOnlyDuringTheSpike) {
  ArrivalShape shape;
  shape.kind = ArrivalShape::Kind::kFlash;
  shape.spike_start = 300.0;
  shape.spike_duration = 100.0;
  shape.factor = 4.0;
  const auto sched = build_schedule(shape, units::per_second(10.0), 1000.0);
  EXPECT_DOUBLE_EQ(sched.rate_at(100.0).value(), 10.0);
  EXPECT_DOUBLE_EQ(sched.rate_at(350.0).value(), 40.0);
  EXPECT_DOUBLE_EQ(sched.rate_at(600.0).value(), 10.0);
}

TEST(BuildSchedule, DiurnalPeaksAboveBase) {
  ArrivalShape shape;
  shape.kind = ArrivalShape::Kind::kDiurnal;
  shape.factor = 2.0;
  shape.peak_time = 500.0;
  const auto sched = build_schedule(shape, units::per_second(10.0), 1000.0);
  EXPECT_GT(sched.rate_at(500.0), sched.rate_at(0.0));
  EXPECT_GE(sched.max_rate().value(), 10.0);
}

TEST(CompileFaults, ResolvesTierNamesAgainstTheModel) {
  const auto model = core::make_enterprise_model(0.6);
  Scenario s;
  s.faults = {ScenarioFault{100.0, "db", sim::FaultKind::kServersDelta, -1}};
  const auto events = compile_faults(s, model);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].station, 2);
  EXPECT_EQ(events[0].value, -1);

  s.faults = {ScenarioFault{100.0, "cache", sim::FaultKind::kServersDelta, -1}};
  try {
    (void)compile_faults(s, model);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "scenario: fault names unknown tier 'cache'");
  }
}

TEST(CompileSlaThresholds, ThreeTimesMeanBoundWhenNoPercentile) {
  // Enterprise classes carry mean bounds only (gold 0.25, silver 0.60,
  // bronze 2.00) -> thresholds are 3x those.
  const auto model = core::make_enterprise_model(0.6);
  const auto thresholds = compile_sla_thresholds(model);
  ASSERT_EQ(thresholds.size(), 3u);
  EXPECT_DOUBLE_EQ(thresholds[0].value(), 0.75);
  EXPECT_DOUBLE_EQ(thresholds[1].value(), 1.80);
  EXPECT_DOUBLE_EQ(thresholds[2].value(), 6.00);
}

}  // namespace
}  // namespace cpm::online
