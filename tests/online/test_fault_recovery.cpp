// Acceptance: the closed loop survives a mid-run capacity loss. A database
// server fails while bronze traffic is ramping; the controller must
// re-plan within one measurement window of observing the loss, shed the
// lowest-priority class (the faulted fleet cannot carry the full mix) and
// keep the admitted classes' SLA attainment at >= 95% once the transient
// clears.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "cpm/core/cpm.hpp"
#include "cpm/online/scenario.hpp"
#include "cpm/online/timeline.hpp"

namespace cpm::online {
namespace {

constexpr double kFaultTime = 305.0;
constexpr double kWindow = 10.0;

Scenario loss_scenario() {
  return scenario_from_json_text(R"({
    "schema": "cpm-scenario/v1",
    "horizon": 600, "window": 10, "seed": 20110516,
    "arrivals": [
      {"class": "bronze", "kind": "ramp", "from": 100, "to": 250,
       "factor": 1.3}
    ],
    "faults": [
      {"time": 305, "tier": "db", "kind": "set-servers", "value": 1}
    ],
    "controller": {"size_servers": false, "levels": 7,
                   "drift_windows": 1, "cooldown_windows": 1,
                   "hysteresis": 0.15}
  })");
}

TEST(FaultRecovery, ReplansWithinOneWindowShedsAndRecovers) {
  const auto model = core::make_enterprise_model(0.92).with_servers({2, 2, 2});
  const auto result = run_online(model, loss_scenario());
  const auto& windows = result.windows;
  ASSERT_FALSE(windows.empty());

  // 1. The fault is answered within one window of the boundary that
  //    observes it (loss at t=305 -> seen at 310 -> replan by 320).
  double fault_replan_time = -1.0;
  for (const auto& rec : windows)
    if (rec.reoptimized && rec.reason == "fault") {
      fault_replan_time = rec.time;
      break;
    }
  ASSERT_GT(fault_replan_time, kFaultTime) << "no fault replan recorded";
  EXPECT_LE(fault_replan_time, kFaultTime + 2.0 * kWindow);

  // 2. The single remaining database server cannot carry the ramped full
  //    mix: bronze is shed (and the decision trace says so).
  bool bronze_shed = false;
  for (const auto& rec : windows)
    if (rec.time >= fault_replan_time && rec.admitted[2] == 0)
      bronze_shed = true;
  EXPECT_TRUE(bronze_shed) << "expected bronze to be shed after the loss";
  EXPECT_GT(result.sim.classes[2].blocked, 0u);
  // Gold survives every window.
  for (const auto& rec : windows) EXPECT_EQ(rec.admitted[0], 1);

  // 3. Attainment recovers: once the transient clears (a few windows after
  //    the replan), every still-admitted class is back at >= 95%.
  const double settle = fault_replan_time + 5.0 * kWindow;
  for (std::size_t k = 0; k < model.num_classes(); ++k) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& rec : windows) {
      if (rec.time < settle || !rec.admitted[k]) continue;
      sum += rec.sla_compliance[k];
      ++n;
    }
    if (n == 0) continue;  // class shed for the whole tail
    EXPECT_GE(sum / static_cast<double>(n), 0.95)
        << model.classes()[k].name << " attainment after recovery";
  }

  // 4. The run's summary agrees with the trace.
  EXPECT_EQ(result.reoptimizations, [&] {
    std::size_t n = 0;
    for (const auto& rec : windows) n += rec.reoptimized ? 1 : 0;
    return n;
  }());
  EXPECT_GT(result.reoptimizations, 0u);
}

}  // namespace
}  // namespace cpm::online
