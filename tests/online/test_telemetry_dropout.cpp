// Telemetry-dropout degradation: when the sensors go dark the controller
// must hold the last known-good plan (no re-plans, estimators frozen),
// mark the blind windows degraded with reason "telemetry", and re-enter
// normal operation hysteretically — the first windows after telemetry
// returns re-warm the estimators but keep drift/SLA triggers suppressed.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "cpm/common/error.hpp"
#include "cpm/core/cpm.hpp"
#include "cpm/online/scenario.hpp"
#include "cpm/online/timeline.hpp"

namespace cpm::online {
namespace {

constexpr double kDropStart = 200.0;
constexpr double kDropEnd = 300.0;
constexpr double kWindow = 10.0;

Scenario dropout_scenario() {
  // A strong mid-run step lands entirely inside the blind interval; the
  // controller must not answer it until telemetry returns.
  return scenario_from_json_text(R"({
    "schema": "cpm-scenario/v1",
    "horizon": 600, "window": 10, "seed": 20110516,
    "arrivals": [
      {"class": "bronze", "kind": "step", "at": 230, "factor": 1.9}
    ],
    "faults": [
      {"time": 200, "kind": "telemetry-dropout", "duration": 100}
    ],
    "controller": {"size_servers": false, "levels": 7,
                   "drift_windows": 2, "cooldown_windows": 1,
                   "hysteresis": 0.15}
  })");
}

// The controller treats a window as stale when start <= t < end.
bool in_dropout(double time) { return time >= kDropStart && time < kDropEnd; }

TEST(TelemetryDropout, ScenarioParsesDropoutsSeparatelyFromClusterFaults) {
  const auto scenario = dropout_scenario();
  ASSERT_EQ(scenario.dropouts.size(), 1u);
  EXPECT_DOUBLE_EQ(scenario.dropouts[0].start.value(), kDropStart);
  EXPECT_DOUBLE_EQ(scenario.dropouts[0].end.value(), kDropEnd);
  // The dropout never reaches the simulator's fault schedule.
  EXPECT_TRUE(scenario.faults.empty());
  const auto model = core::make_enterprise_model(0.8);
  EXPECT_TRUE(compile_faults(scenario, model).empty());
}

TEST(TelemetryDropout, RejectsMalformedDropoutEntries) {
  EXPECT_THROW(scenario_from_json_text(R"({
    "schema": "cpm-scenario/v1",
    "faults": [{"time": 200, "kind": "telemetry-dropout"}]
  })"),
               Error);  // missing duration
  EXPECT_THROW(scenario_from_json_text(R"({
    "schema": "cpm-scenario/v1",
    "faults": [{"time": 200, "kind": "telemetry-dropout",
                "duration": -5}]
  })"),
               Error);
}

TEST(TelemetryDropout, HoldsPlanAndMarksWindowsDegraded) {
  const auto model = core::make_enterprise_model(0.85);
  const auto result = run_online(model, dropout_scenario());
  ASSERT_FALSE(result.windows.empty());

  std::size_t blind = 0;
  for (const auto& rec : result.windows) {
    if (!in_dropout(rec.time)) continue;
    ++blind;
    // No re-plan while blind, whatever the (unseen) traffic does.
    EXPECT_FALSE(rec.reoptimized) << "replanned at t=" << rec.time;
    EXPECT_TRUE(rec.degraded) << "window at t=" << rec.time;
    EXPECT_EQ(rec.reason, "telemetry") << "window at t=" << rec.time;
  }
  EXPECT_EQ(blind, static_cast<std::size_t>((kDropEnd - kDropStart) / kWindow));

  // Outside the dropout no window carries the telemetry reason.
  for (const auto& rec : result.windows) {
    if (!in_dropout(rec.time)) {
      EXPECT_NE(rec.reason, "telemetry");
    }
  }
}

TEST(TelemetryDropout, EstimatorsAreNotFedWhileBlind) {
  const auto model = core::make_enterprise_model(0.85);
  const auto result = run_online(model, dropout_scenario());

  // The EWMA estimate is frozen across every blind window: the step at
  // t=230 moves the measured rates but must not move the estimate until
  // telemetry returns.
  const WindowRecord* before = nullptr;
  for (const auto& rec : result.windows) {
    if (rec.time < kDropStart) before = &rec;
    if (!in_dropout(rec.time) || before == nullptr) continue;
    for (std::size_t k = 0; k < rec.ewma_rate.size(); ++k) {
      EXPECT_DOUBLE_EQ(rec.ewma_rate[k], before->ewma_rate[k])
          << "class " << k << " estimate moved at t=" << rec.time;
    }
  }
  ASSERT_NE(before, nullptr);
}

TEST(TelemetryDropout, ReentryIsHystereticThenAnswersTheStep) {
  const auto model = core::make_enterprise_model(0.85);
  const auto scenario = dropout_scenario();
  const auto result = run_online(model, scenario);

  // For drift_windows windows after telemetry returns, drift/SLA triggers
  // stay suppressed while the estimators re-warm.
  const double reentry_end =
      kDropEnd + scenario.controller.drift_windows * kWindow;
  for (const auto& rec : result.windows) {
    if (rec.time < kDropEnd || rec.time > reentry_end) continue;
    EXPECT_FALSE(rec.reoptimized && (rec.reason == "drift" ||
                                     rec.reason == "sla"))
        << "spurious first-sample replan at t=" << rec.time;
  }

  // But the step is real and persistent, so the controller does answer
  // it shortly after the hysteresis clears.
  bool answered = false;
  for (const auto& rec : result.windows)
    if (rec.time > reentry_end && rec.time <= reentry_end + 6.0 * kWindow &&
        rec.reoptimized)
      answered = true;
  EXPECT_TRUE(answered) << "step inside the dropout was never answered";
}

TEST(TelemetryDropout, RunIsDeterministic) {
  const auto model = core::make_enterprise_model(0.85);
  const auto a = run_online(model, dropout_scenario());
  const auto b = run_online(model, dropout_scenario());
  EXPECT_EQ(a.timeline.dump(), b.timeline.dump());
}

}  // namespace
}  // namespace cpm::online
