#include "cpm/resilience/journal.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <string>
#include <vector>

namespace cpm::resilience {
namespace {

namespace stdfs = std::filesystem;

std::string current_test_name() {
  return testing::UnitTest::GetInstance()->current_test_info()->name();
}

Json header() {
  return Json(JsonObject{{"schema", Json("cpm-journal/v1")},
                         {"kind", Json("sweep")}});
}

Json point(int index, double value) {
  return Json(JsonObject{{"index", Json(index)}, {"value", Json(value)}});
}

class JournalTest : public testing::Test {
 protected:
  std::string dir_ =
      testing::TempDir() + "/cpm-journal-test-" + current_test_name();
  std::string path_ = dir_ + "/run.journal";

  void SetUp() override { stdfs::remove_all(dir_); }
  void TearDown() override { stdfs::remove_all(dir_); }

  FileSystem& fs_ = real_filesystem();
};

TEST_F(JournalTest, BeginAppendReplayRoundTrips) {
  RunJournal journal(fs_, path_);
  journal.begin(header());
  journal.append(point(0, 1.5));
  journal.append(point(1, 2.25));

  const auto replay = RunJournal::replay(fs_, path_);
  EXPECT_TRUE(replay.found);
  EXPECT_EQ(replay.dropped, 0u);
  EXPECT_EQ(replay.header.at("kind").as_string(), "sweep");
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0].at("index").as_number(), 0.0);
  EXPECT_EQ(replay.records[1].at("value").as_number(), 2.25);
}

TEST_F(JournalTest, MissingFileIsNotFound) {
  const auto replay = RunJournal::replay(fs_, path_);
  EXPECT_FALSE(replay.found);
  EXPECT_TRUE(replay.header.is_null());
  EXPECT_TRUE(replay.records.empty());
  EXPECT_EQ(replay.dropped, 0u);
}

TEST_F(JournalTest, BeginReplacesAnEarlierJournal) {
  RunJournal first(fs_, path_);
  first.begin(header());
  first.append(point(0, 1.0));

  RunJournal second(fs_, path_);
  second.begin(header());

  const auto replay = RunJournal::replay(fs_, path_);
  EXPECT_TRUE(replay.found);
  EXPECT_TRUE(replay.records.empty());  // old points are gone
}

TEST_F(JournalTest, TornTrailingLineIsDroppedAndLaterAppendsSurvive) {
  RunJournal journal(fs_, path_);
  journal.begin(header());
  journal.append(point(0, 1.0));

  // Simulate a SIGKILL mid-append: a partial frame with no terminator.
  const std::string torn = RunJournal::frame(point(1, 2.0));
  fs_.append(path_, torn.substr(0, torn.size() / 2));

  // The next writer (a resumed run) appends; the leading newline in the
  // frame seals the torn fragment into its own invalid line.
  RunJournal resumed(fs_, path_);
  resumed.append(point(2, 3.0));

  const auto replay = RunJournal::replay(fs_, path_);
  EXPECT_TRUE(replay.found);
  EXPECT_EQ(replay.dropped, 1u);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0].at("index").as_number(), 0.0);
  EXPECT_EQ(replay.records[1].at("index").as_number(), 2.0);
}

TEST_F(JournalTest, ChecksumMismatchIsDropped) {
  RunJournal journal(fs_, path_);
  journal.begin(header());
  journal.append(point(0, 1.0));

  std::string bytes = fs_.read(path_);
  // Flip one payload character of the last record.
  const auto pos = bytes.rfind("\"value\"");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos + 1] = 'X';
  fs_.write_atomic(path_, bytes);

  const auto replay = RunJournal::replay(fs_, path_);
  EXPECT_TRUE(replay.found);
  EXPECT_EQ(replay.dropped, 1u);
  EXPECT_TRUE(replay.records.empty());
  EXPECT_EQ(replay.header.at("kind").as_string(), "sweep");
}

TEST_F(JournalTest, GarbageLinesAreCountedNotFatal) {
  RunJournal journal(fs_, path_);
  journal.begin(header());
  fs_.append(path_, "\nnot a journal line at all\n");
  fs_.append(path_, "\ndeadbeefdeadbeef {\"broken\": \n");
  journal.append(point(0, 1.0));

  const auto replay = RunJournal::replay(fs_, path_);
  EXPECT_TRUE(replay.found);
  EXPECT_EQ(replay.dropped, 2u);
  ASSERT_EQ(replay.records.size(), 1u);
}

TEST_F(JournalTest, FrameFormatIsSum16SpacePayload) {
  const std::string line = RunJournal::frame(point(3, 4.0));
  // Leading newline seals any torn predecessor; then 16 hex chars,
  // a space, compact JSON, terminator.
  ASSERT_GT(line.size(), 19u);
  EXPECT_EQ(line.front(), '\n');
  EXPECT_EQ(line[17], ' ');
  EXPECT_EQ(line.back(), '\n');
  for (int i = 1; i <= 16; ++i) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(line[i])))
        << "offset " << i;
  }
  EXPECT_NE(line.find("\"index\""), std::string::npos);
}

TEST_F(JournalTest, FramedDoublesRoundTripBitIdentically) {
  const double awkward = 0.1 + 0.2;  // 0.30000000000000004
  RunJournal journal(fs_, path_);
  journal.begin(header());
  journal.append(point(0, awkward));

  const auto replay = RunJournal::replay(fs_, path_);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].at("value").as_number(), awkward);
}

// Fails the first `failures` appends transiently, then passes through.
class FlakyAppendFs final : public FileSystem {
 public:
  FlakyAppendFs(FileSystem& inner, int failures)
      : inner_(inner), failures_(failures) {}

  std::string read(const std::string& p) override { return inner_.read(p); }
  bool exists(const std::string& p) override { return inner_.exists(p); }
  void write_atomic(const std::string& p, const std::string& b) override {
    inner_.write_atomic(p, b);
  }
  void append(const std::string& p, const std::string& b) override {
    if (failures_ > 0) {
      --failures_;
      throw IoError(IoErrorKind::kTransient, "flaky append");
    }
    inner_.append(p, b);
  }
  void remove(const std::string& p) override { inner_.remove(p); }
  void create_directories(const std::string& p) override {
    inner_.create_directories(p);
  }
  std::vector<std::string> list_files(const std::string& d) override {
    return inner_.list_files(d);
  }

 private:
  FileSystem& inner_;
  int failures_;
};

TEST_F(JournalTest, TransientAppendFailuresAreRetried) {
  FlakyAppendFs flaky(fs_, 0);
  std::vector<units::Seconds> pauses;
  RunJournal journal(flaky, path_, RetryPolicy{},
                     [&](units::Seconds s) { pauses.push_back(s); });
  journal.begin(header());

  // Arm the fault after the header so only the point append is flaky.
  FlakyAppendFs flaky_points(fs_, 2);
  RunJournal resumed(flaky_points, path_, RetryPolicy{},
                     [&](units::Seconds s) { pauses.push_back(s); });
  resumed.append(point(0, 1.0));

  EXPECT_EQ(pauses.size(), 2u);  // two transient failures, two pauses
  const auto replay = RunJournal::replay(fs_, path_);
  EXPECT_EQ(replay.dropped, 0u);
  ASSERT_EQ(replay.records.size(), 1u);
}

}  // namespace
}  // namespace cpm::resilience
