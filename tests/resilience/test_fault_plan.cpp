#include "cpm/resilience/fault_plan.hpp"

#include <gtest/gtest.h>

#include "cpm/common/error.hpp"

namespace cpm::resilience {
namespace {

Json parse(const std::string& text) { return Json::parse(text); }

TEST(FaultPlan, ParsesFullDocument) {
  const auto plan = fault_plan_from_json(parse(R"({
    "schema": "cpm-fault-plan/v1",
    "seed": 42,
    "rules": [
      {"op": "write", "path": "cache", "kind": "eio", "after": 2, "count": 1},
      {"op": "append", "path": ".journal", "kind": "torn",
       "probability": 0.25}
    ]
  })"));
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.rules.size(), 2u);
  EXPECT_EQ(plan.rules[0].op, "write");
  EXPECT_EQ(plan.rules[0].kind, FaultKind::kEio);
  EXPECT_EQ(plan.rules[0].after, 2u);
  EXPECT_EQ(plan.rules[0].count, 1u);
  EXPECT_DOUBLE_EQ(plan.rules[0].probability, 1.0);
  EXPECT_EQ(plan.rules[1].kind, FaultKind::kTorn);
  EXPECT_DOUBLE_EQ(plan.rules[1].probability, 0.25);
}

TEST(FaultPlan, DefaultsMatchAnyOpAndPath) {
  const auto plan = fault_plan_from_json(parse(
      R"({"schema": "cpm-fault-plan/v1", "rules": [{"kind": "enospc"}]})"));
  ASSERT_EQ(plan.rules.size(), 1u);
  EXPECT_EQ(plan.rules[0].op, "*");
  EXPECT_TRUE(plan.rules[0].path.empty());
  EXPECT_EQ(plan.rules[0].count, 0u);  // 0 = fire forever
}

TEST(FaultPlan, RejectsWrongSchema) {
  EXPECT_THROW(fault_plan_from_json(parse(R"({"schema": "nope"})")), Error);
}

TEST(FaultPlan, RejectsUnknownKind) {
  EXPECT_THROW(fault_plan_from_json(parse(
                   R"({"schema": "cpm-fault-plan/v1",
                       "rules": [{"kind": "meteor"}]})")),
               Error);
}

TEST(FaultPlan, RejectsUnknownOp) {
  EXPECT_THROW(fault_plan_from_json(parse(
                   R"({"schema": "cpm-fault-plan/v1",
                       "rules": [{"op": "chmod", "kind": "eio"}]})")),
               Error);
}

TEST(FaultPlan, RejectsProbabilityOutOfRange) {
  EXPECT_THROW(fault_plan_from_json(parse(
                   R"({"schema": "cpm-fault-plan/v1",
                       "rules": [{"kind": "eio", "probability": 1.5}]})")),
               Error);
}

TEST(FaultKindNames, RoundTrip) {
  for (const auto kind :
       {FaultKind::kEio, FaultKind::kEnospc, FaultKind::kTorn,
        FaultKind::kRenameFail, FaultKind::kBitFlip}) {
    EXPECT_EQ(fault_kind_from_name(fault_kind_name(kind)), kind);
  }
  EXPECT_THROW(fault_kind_from_name("nope"), Error);
}

}  // namespace
}  // namespace cpm::resilience
