#include "cpm/resilience/faulting_fs.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

namespace cpm::resilience {
namespace {

namespace stdfs = std::filesystem;

std::string current_test_name() {
  return testing::UnitTest::GetInstance()->current_test_info()->name();
}

FaultRule rule(const std::string& op, const std::string& path,
               FaultKind kind) {
  FaultRule r;
  r.op = op;
  r.path = path;
  r.kind = kind;
  return r;
}

class FaultingFsTest : public testing::Test {
 protected:
  std::string dir_ =
      testing::TempDir() + "/cpm-faultfs-test-" + current_test_name();

  void SetUp() override { stdfs::remove_all(dir_); }
  void TearDown() override { stdfs::remove_all(dir_); }

  FaultPlan plan_with(const FaultRule& r, std::uint64_t seed = 1) {
    FaultPlan plan;
    plan.seed = seed;
    plan.rules = {r};
    return plan;
  }
};

TEST_F(FaultingFsTest, PassesThroughWhenNoRuleMatches) {
  FaultingFileSystem fs(real_filesystem(),
                        plan_with(rule("read", "other-file", FaultKind::kEio)));
  fs.write_atomic(dir_ + "/a", "payload");
  EXPECT_EQ(fs.read(dir_ + "/a"), "payload");
  EXPECT_EQ(fs.injected(), 0u);
}

TEST_F(FaultingFsTest, EioIsTransient) {
  FaultingFileSystem fs(real_filesystem(),
                        plan_with(rule("write", "/a", FaultKind::kEio)));
  try {
    fs.write_atomic(dir_ + "/a", "x");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kTransient);
  }
  EXPECT_EQ(fs.injected(), 1u);
}

TEST_F(FaultingFsTest, EnospcIsPermanent) {
  FaultingFileSystem fs(real_filesystem(),
                        plan_with(rule("append", "", FaultKind::kEnospc)));
  try {
    fs.append(dir_ + "/log", "x");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kPermanent);
  }
}

TEST_F(FaultingFsTest, AfterSkipsLeadingMatchesAndCountBoundsFiring) {
  FaultRule r = rule("write", "", FaultKind::kEio);
  r.after = 1;
  r.count = 1;
  FaultingFileSystem fs(real_filesystem(), plan_with(r));
  EXPECT_NO_THROW(fs.write_atomic(dir_ + "/one", "1"));   // passes (after)
  EXPECT_THROW(fs.write_atomic(dir_ + "/two", "2"), IoError);  // fires
  EXPECT_NO_THROW(fs.write_atomic(dir_ + "/three", "3"));  // count spent
  EXPECT_EQ(fs.injected(), 1u);
}

TEST_F(FaultingFsTest, TornWritePublishesAPrefix) {
  const std::string payload = "0123456789abcdef0123456789abcdef";
  FaultingFileSystem fs(real_filesystem(),
                        plan_with(rule("write", "", FaultKind::kTorn)));
  fs.write_atomic(dir_ + "/torn", payload);  // reports success
  const std::string on_disk = real_filesystem().read(dir_ + "/torn");
  EXPECT_LT(on_disk.size(), payload.size());
  EXPECT_EQ(on_disk, payload.substr(0, on_disk.size()));
}

TEST_F(FaultingFsTest, BitFlipCorruptsExactlyOneBit) {
  const std::string payload(64, 'A');
  FaultingFileSystem fs(real_filesystem(),
                        plan_with(rule("write", "", FaultKind::kBitFlip)));
  fs.write_atomic(dir_ + "/flip", payload);
  const std::string on_disk = real_filesystem().read(dir_ + "/flip");
  ASSERT_EQ(on_disk.size(), payload.size());
  int flipped_bits = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    unsigned diff = static_cast<unsigned char>(on_disk[i]) ^
                    static_cast<unsigned char>(payload[i]);
    while (diff != 0) {
      flipped_bits += static_cast<int>(diff & 1u);
      diff >>= 1u;
    }
  }
  EXPECT_EQ(flipped_bits, 1);
}

TEST_F(FaultingFsTest, RenameFailLeavesTargetUntouched) {
  real_filesystem().write_atomic(dir_ + "/out", "original");
  FaultingFileSystem fs(real_filesystem(),
                        plan_with(rule("write", "/out", FaultKind::kRenameFail)));
  try {
    fs.write_atomic(dir_ + "/out", "replacement");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kTransient);
  }
  EXPECT_EQ(real_filesystem().read(dir_ + "/out"), "original");
}

TEST_F(FaultingFsTest, ScheduleIsDeterministicForAGivenSeed) {
  FaultRule r = rule("write", "", FaultKind::kEio);
  r.probability = 0.5;
  const auto fired_pattern = [&](std::uint64_t seed) {
    FaultingFileSystem fs(real_filesystem(), plan_with(r, seed));
    std::string pattern;
    for (int i = 0; i < 32; ++i) {
      try {
        fs.write_atomic(dir_ + "/p" + std::to_string(i), "x");
        pattern += '.';
      } catch (const IoError&) {
        pattern += 'X';
      }
    }
    return pattern;
  };
  const std::string a = fired_pattern(7);
  EXPECT_EQ(a, fired_pattern(7));             // same seed: same schedule
  EXPECT_NE(a, fired_pattern(8));             // different seed: different
  EXPECT_NE(a.find('X'), std::string::npos);  // some fired
  EXPECT_NE(a.find('.'), std::string::npos);  // some passed
}

TEST_F(FaultingFsTest, ExistsIsNeverFaulted) {
  FaultingFileSystem fs(real_filesystem(),
                        plan_with(rule("*", "", FaultKind::kEio)));
  EXPECT_FALSE(fs.exists(dir_ + "/anything"));
  EXPECT_EQ(fs.injected(), 0u);
}

}  // namespace
}  // namespace cpm::resilience
