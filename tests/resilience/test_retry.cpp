#include "cpm/resilience/retry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace cpm::resilience {
namespace {

RetryPolicy fast_policy() {
  RetryPolicy p;
  p.max_attempts = 4;
  p.seed = 11;
  return p;
}

TEST(WithRetry, SucceedsAfterTransientFailures) {
  int calls = 0;
  std::vector<units::Seconds> pauses;
  const int result = with_retry(
      fast_policy(), "op",
      [&] {
        if (++calls < 3) throw IoError(IoErrorKind::kTransient, "flaky");
        return 99;
      },
      [&](units::Seconds s) { pauses.push_back(s); });
  EXPECT_EQ(result, 99);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(pauses.size(), 2u);  // one pause per retried failure
}

TEST(WithRetry, PermanentIsNotRetried) {
  int calls = 0;
  EXPECT_THROW(
      with_retry(
          fast_policy(), "op",
          [&]() -> int {
            ++calls;
            throw IoError(IoErrorKind::kPermanent, "enoent");
          },
          [](units::Seconds) {}),
      IoError);
  EXPECT_EQ(calls, 1);
}

TEST(WithRetry, CorruptIsNotRetried) {
  int calls = 0;
  EXPECT_THROW(
      with_retry(
          fast_policy(), "op",
          [&]() -> int {
            ++calls;
            throw IoError(IoErrorKind::kCorrupt, "bad bytes");
          },
          [](units::Seconds) {}),
      IoError);
  EXPECT_EQ(calls, 1);
}

TEST(WithRetry, ExhaustionKeepsTransientKindAndNamesTheOp) {
  int calls = 0;
  try {
    with_retry(
        fast_policy(), "write 'out.json'",
        [&]() -> int {
          ++calls;
          throw IoError(IoErrorKind::kTransient, "eio");
        },
        [](units::Seconds) {});
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kTransient);
    const std::string what = e.what();
    EXPECT_NE(what.find("write 'out.json'"), std::string::npos);
    EXPECT_NE(what.find("persisted through 4 attempts"), std::string::npos);
    EXPECT_NE(what.find("eio"), std::string::npos);
  }
  EXPECT_EQ(calls, 4);
}

TEST(WithRetry, NonIoErrorsPropagateUntouched) {
  EXPECT_THROW(with_retry(
                   fast_policy(), "op",
                   []() -> int { throw Error("logic bug"); },
                   [](units::Seconds) {}),
               Error);
}

TEST(RetryBackoff, GrowsGeometricallyWithinJitterBounds) {
  RetryPolicy p = fast_policy();
  for (int attempt = 0; attempt < 5; ++attempt) {
    const double nominal =
        std::min(p.backoff_base.value() *
                     std::pow(p.backoff_multiplier, attempt),
                 p.backoff_cap.value());
    const double pause = retry_backoff(p, attempt).value();
    EXPECT_GE(pause, nominal * (1.0 - p.jitter) - 1e-12);
    EXPECT_LE(pause, nominal * (1.0 + p.jitter) + 1e-12);
  }
}

TEST(RetryBackoff, CapBoundsLateAttempts) {
  RetryPolicy p = fast_policy();
  p.jitter = 0.0;
  EXPECT_DOUBLE_EQ(retry_backoff(p, 50).value(), p.backoff_cap.value());
}

TEST(RetryBackoff, JitterIsDeterministicPerSeed) {
  RetryPolicy a = fast_policy();
  RetryPolicy b = fast_policy();
  for (int attempt = 0; attempt < 8; ++attempt) {
    EXPECT_DOUBLE_EQ(retry_backoff(a, attempt).value(),
                     retry_backoff(b, attempt).value());
  }
  RetryPolicy c = fast_policy();
  c.seed = 12;
  bool any_differ = false;
  for (int attempt = 0; attempt < 8; ++attempt) {
    any_differ = any_differ || retry_backoff(a, attempt).value() !=
                                   retry_backoff(c, attempt).value();
  }
  EXPECT_TRUE(any_differ);
}

}  // namespace
}  // namespace cpm::resilience
