// Optimizer-output certificates: a feasible sizing/frequency solution is
// re-verified statically over an uncertainty box, an uncertified solution
// fires CPM-C010, and the certificate JSON is machine-checkable.
#include <gtest/gtest.h>

#include <string>

#include "cpm/certify/certificate.hpp"
#include "cpm/common/json.hpp"
#include "cpm/core/cluster_model.hpp"
#include "cpm/core/optimizers.hpp"

namespace cpm::certify {
namespace {

TEST(Certificate, FeasibleSizingCertifiesOnTheNominalBox) {
  const auto model = core::make_enterprise_model(0.6);
  const auto solution = core::minimize_cost_for_slas(model, {});
  ASSERT_TRUE(solution.feasible);

  const Certificate cert =
      certify_cost_solution(model, solution, {}, default_box(model));
  EXPECT_EQ(cert.solution, "server-sizing");
  EXPECT_TRUE(cert.optimizer_feasible);
  EXPECT_TRUE(cert.certified);
  EXPECT_EQ(cert.servers, solution.servers);
  EXPECT_TRUE(cert.report.all_proved());
  EXPECT_TRUE(cert.report.diagnostics.diagnostics().empty());
}

TEST(Certificate, SizingSurvivesModestRateUncertainty) {
  const auto model = core::make_enterprise_model(0.6);
  const auto solution = core::minimize_cost_for_slas(model, {});
  ASSERT_TRUE(solution.feasible);

  BoxSpec box = default_box(model);
  for (auto& r : box.rates) r = core::Interval{r.lo * 0.95, r.hi * 1.02};
  const Certificate cert = certify_cost_solution(model, solution, {}, box);
  // The certified claim is about the RESIZED model: stability and SLAs
  // hold for every rate choice in the box.
  for (const auto& p : cert.report.properties)
    EXPECT_NE(p.verdict, Verdict::kRefuted) << p.property;
}

TEST(Certificate, InfeasibleSolutionIsUncertifiedWithC010) {
  // Starve the sizer so it reports infeasible: certificates must not run
  // the prover, and CPM-C010 must gate the exit code.
  auto classes = core::make_enterprise_model(0.6).classes();
  classes[0].sla.max_mean_e2e_delay = units::seconds(1e-6);
  const core::ClusterModel doomed(core::make_enterprise_model(0.6).tiers(),
                                  classes);
  const auto solution = core::minimize_cost_for_slas(doomed, {});
  ASSERT_FALSE(solution.feasible);

  const Certificate cert =
      certify_cost_solution(doomed, solution, {}, default_box(doomed));
  EXPECT_FALSE(cert.certified);
  EXPECT_FALSE(cert.optimizer_feasible);
  ASSERT_EQ(cert.report.diagnostics.diagnostics().size(), 1u);
  const auto& d = cert.report.diagnostics.diagnostics()[0];
  EXPECT_EQ(d.rule_id, "CPM-C010");
  EXPECT_EQ(d.path, "solution");
  EXPECT_NE(d.message.find("not certified"), std::string::npos);
}

TEST(Certificate, RefutedBoxUncertifiesAFeasibleSolution) {
  // The optimizer's point solution is feasible, but a box wide enough to
  // saturate the sized cluster must refute and uncertify it.
  const auto model = core::make_enterprise_model(0.6);
  const auto solution = core::minimize_cost_for_slas(model, {});
  ASSERT_TRUE(solution.feasible);

  BoxSpec box = default_box(model);
  box.rates[0] = core::Interval{model.classes()[0].rate.value(),
                                model.classes()[0].rate.value() * 200.0};
  const Certificate cert = certify_cost_solution(model, solution, {}, box);
  EXPECT_TRUE(cert.optimizer_feasible);
  EXPECT_FALSE(cert.certified);
  EXPECT_GT(cert.report.count(Verdict::kRefuted), 0u);
}

TEST(Certificate, FrequencyPlanPinsTheFrequencyDimensions) {
  const auto model = core::make_enterprise_model(0.6);
  const auto solution = core::minimize_power_with_delay_bound(model, units::seconds(0.5));
  ASSERT_TRUE(solution.feasible);

  BoxSpec box = default_box(model);
  for (auto& f : box.frequencies) f = core::Interval{0.6, 1.0};
  const Certificate cert = certify_frequency_solution(model, solution, box);
  EXPECT_EQ(cert.solution, "frequency-plan");
  EXPECT_EQ(cert.frequencies, solution.frequencies);
  // The certificate evaluates AT the plan's operating point, not over the
  // frequency range the box declared.
  EXPECT_TRUE(cert.certified) << render_certify_text(cert.report, "plan");
}

TEST(Certificate, JsonShape) {
  const auto model = core::make_enterprise_model(0.6);
  const auto solution = core::minimize_cost_for_slas(model, {});
  const BoxSpec box = default_box(model);
  const Certificate cert = certify_cost_solution(model, solution, {}, box);

  const Json doc = Json::parse(certificate_to_json(cert, model, box).dump(2));
  EXPECT_EQ(doc.at("format").as_string(), "cpm-certificate/v1");
  EXPECT_EQ(doc.at("solution").as_string(), "server-sizing");
  EXPECT_TRUE(doc.at("certified").as_bool());
  EXPECT_TRUE(doc.at("optimizer_feasible").as_bool());
  EXPECT_EQ(doc.at("servers").size(), model.num_tiers());
  const Json& report = doc.at("report");
  EXPECT_EQ(report.at("format").as_string(), "cpm-certify/v1");
  EXPECT_TRUE(report.contains("box"));
  EXPECT_TRUE(report.contains("properties"));
  EXPECT_EQ(report.at("verdicts").at("refuted").as_number(), 0.0);
}

}  // namespace
}  // namespace cpm::certify
