// Interval arithmetic soundness: every operation's result must contain
// the exact real result for every choice of operands (inclusion
// isotonicity), point intervals must stay bit-exact, and division by a
// zero-containing denominator must yield the correct half-line instead of
// throwing. The randomized containment check is the numeric bedrock the
// whole certifier rests on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cpm/common/error.hpp"
#include "cpm/common/rng.hpp"
#include "cpm/core/interval.hpp"

namespace cpm::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Interval, PointArithmeticIsBitExact) {
  // Degenerate intervals skip outward widening, so a chain of point
  // operations reproduces ordinary double arithmetic bit for bit — the
  // guarantee that makes degenerate boxes match cpm::lint exactly.
  const Interval a = Interval::point(0.1);
  const Interval b = Interval::point(0.3);
  EXPECT_EQ((a + b).lo, 0.1 + 0.3);
  EXPECT_EQ((a + b).hi, 0.1 + 0.3);
  EXPECT_EQ((a * b).lo, 0.1 * 0.3);
  EXPECT_EQ((a - b).hi, 0.1 - 0.3);
  EXPECT_EQ((a / b).lo, 0.1 / 0.3);
  EXPECT_TRUE((a / b).is_point());
}

TEST(Interval, MakeValidatesEndpoints) {
  EXPECT_THROW(Interval::make(2.0, 1.0), Error);
  EXPECT_THROW(Interval::make(std::nan(""), 1.0), Error);
  EXPECT_THROW(Interval::make(0.0, std::nan("")), Error);
  const Interval ok = Interval::make(-1.0, kInf);
  EXPECT_EQ(ok.lo, -1.0);
  EXPECT_EQ(ok.hi, kInf);
}

TEST(Interval, WidenMovesEndpointsOutByOneUlp) {
  const Interval w = widen({1.0, 2.0});
  EXPECT_LT(w.lo, 1.0);
  EXPECT_GT(w.hi, 2.0);
  EXPECT_EQ(w.lo, std::nextafter(1.0, -kInf));
  EXPECT_EQ(w.hi, std::nextafter(2.0, kInf));
  // Infinite endpoints stay put.
  const Interval inf = widen({0.0, kInf});
  EXPECT_EQ(inf.hi, kInf);
}

TEST(Interval, HullAndContains) {
  const Interval h = hull({0.0, 1.0}, {3.0, 4.0});
  EXPECT_TRUE(h.contains(Interval{0.0, 1.0}));
  EXPECT_TRUE(h.contains(Interval{3.0, 4.0}));
  EXPECT_TRUE(h.contains(2.0));
  EXPECT_FALSE(Interval({0.0, 1.0}).contains(2.0));
}

TEST(Interval, RandomizedContainment) {
  // For random operand intervals and random concrete choices inside
  // them, x op y must land inside [x] op [y] for all four operations.
  Rng rng(20110516);
  for (int trial = 0; trial < 2000; ++trial) {
    const double a = rng.uniform(-10.0, 10.0);
    const double b = a + rng.uniform(0.0, 5.0);
    const double c = rng.uniform(-10.0, 10.0);
    const double d = c + rng.uniform(0.0, 5.0);
    const Interval x{a, b};
    const Interval y{c, d};
    const double xv = rng.uniform(a, b);
    const double yv = rng.uniform(c, d);
    EXPECT_TRUE((x + y).contains(xv + yv));
    EXPECT_TRUE((x - y).contains(xv - yv));
    EXPECT_TRUE((x * y).contains(xv * yv));
    if (yv != 0.0) EXPECT_TRUE((x / y).contains(xv / yv)) << xv << "/" << yv;
  }
}

TEST(Interval, ZeroInfProductConventionIsZero) {
  // Closed-interval convention: an infinite endpoint is a bound, never an
  // attained value, so {0} * [0, inf] stays pinned at 0 instead of NaN.
  const Interval z = Interval::point(0.0);
  EXPECT_EQ((z * Interval::point(kInf)).lo, 0.0);
  EXPECT_EQ((z * Interval::point(kInf)).hi, 0.0);
  // Non-point operands still widen outward, but only by one ulp — never
  // to NaN or an infinite low bound.
  const Interval zh = z * Interval{0.0, kInf};
  EXPECT_TRUE(zh.contains(0.0));
  EXPECT_LE(zh.hi, 5e-324);
  const Interval p = Interval{0.0, 2.0} * Interval{0.0, kInf};
  EXPECT_EQ(p.hi, kInf);
  EXPECT_LE(p.lo, 0.0);
  EXPECT_GE(p.lo, -5e-324);
}

TEST(Interval, DivisionByZeroTouchingDenominatorYieldsHalfLine) {
  // Positive numerator over [0, d]: lower bound from the definite corner,
  // +inf above — saturation reads as "cannot prove", never a throw.
  const Interval q = Interval{1.0, 2.0} / Interval{0.0, 4.0};
  EXPECT_LE(q.lo, 0.25);
  EXPECT_GT(q.lo, 0.2);
  EXPECT_EQ(q.hi, kInf);

  const Interval neg = Interval{-2.0, -1.0} / Interval{0.0, 4.0};
  EXPECT_EQ(neg.lo, -kInf);
  EXPECT_GE(neg.hi, -0.25);

  const Interval straddle = Interval{1.0, 2.0} / Interval{-1.0, 1.0};
  EXPECT_EQ(straddle.lo, -kInf);
  EXPECT_EQ(straddle.hi, kInf);
}

TEST(Interval, HalfLineQuotientSkipsNanCorners) {
  // [x, inf] / [y, inf] hits the inf/inf NaN corner; the sound result is
  // [~0, inf] from the remaining candidates, never [-inf, inf].
  const Interval q = Interval{1.0, kInf} / Interval{2.0, kInf};
  EXPECT_GE(q.lo, -1e-300);
  EXPECT_EQ(q.hi, kInf);
  EXPECT_TRUE(q.contains(0.5));
  EXPECT_TRUE(q.contains(1e12));
}

TEST(Interval, PowAndClamp) {
  const Interval p = pow_nonneg({2.0, 3.0}, 2.0);
  EXPECT_TRUE(p.contains(4.0));
  EXPECT_TRUE(p.contains(9.0));
  EXPECT_TRUE(p.contains(6.25));
  EXPECT_THROW(pow_nonneg({-1.0, 1.0}, 2.0), Error);

  const Interval c = max_with({-2.0, 5.0}, 0.0);
  EXPECT_EQ(c.lo, 0.0);
  EXPECT_EQ(c.hi, 5.0);
}

TEST(Interval, MidpointHandlesInfiniteEndpoints) {
  EXPECT_EQ(Interval({0.0, 4.0}).midpoint(), 2.0);
  EXPECT_EQ(Interval({0.0, kInf}).midpoint(), 0.0);
  EXPECT_EQ(Interval({-kInf, 3.0}).midpoint(), 3.0);
}

}  // namespace
}  // namespace cpm::core
