// cpm::certify verdict semantics: degenerate boxes reproduce lint's point
// verdicts rule for rule (same rule IDs, paths and message prefixes),
// wide boxes refute with concrete witnesses, bisection turns UNDECIDED
// into PROVED, and the box parser rejects malformed specs with CPM-C009.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "cpm/certify/certify.hpp"
#include "cpm/common/error.hpp"
#include "cpm/common/json.hpp"
#include "cpm/core/cluster_model.hpp"
#include "cpm/core/preconditions.hpp"
#include "cpm/lint/analyze.hpp"

namespace cpm::certify {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

const PropertyResult* find_property(const CertifyReport& report,
                                    const std::string& name) {
  for (const auto& p : report.properties)
    if (p.property == name) return &p;
  return nullptr;
}

const lint::Diagnostic* find_diag(const lint::LintReport& report,
                                  const std::string& rule,
                                  const std::string& path) {
  for (const auto& d : report.diagnostics())
    if (d.rule_id == rule && d.path == path) return &d;
  return nullptr;
}

TEST(Certify, HealthyModelProvesEverythingOnThePointBox) {
  const auto model = core::make_enterprise_model(0.6);
  const BoxSpec box = default_box(model);
  EXPECT_TRUE(box.is_point());

  const CertifyReport report = certify_model(model, box);
  EXPECT_TRUE(report.all_proved());
  EXPECT_TRUE(report.diagnostics.diagnostics().empty());
  // 3 tiers + (floor + mean) per mean-bounded class.
  EXPECT_GE(report.properties.size(), 3u);
  for (const auto& p : report.properties) {
    EXPECT_EQ(p.verdict, Verdict::kProved) << p.property;
    EXPECT_EQ(p.boxes_explored, 1) << p.property;
    EXPECT_FALSE(p.witness.valid);
  }
}

TEST(Certify, DegenerateBoxMatchesLintRuleForRule) {
  // Overload one tier (huge gold rate) AND make one SLA statically
  // infeasible: certify on the point box must fire CPM-C001/C003/C005
  // exactly where lint fires CPM-L001/L003, with identical paths and the
  // same shared-precondition message prefix.
  auto classes = core::make_enterprise_model(0.6).classes();
  classes[0].rate *= 50.0;
  classes[1].sla.max_mean_e2e_delay = units::seconds(1e-6);
  const core::ClusterModel doomed(core::make_enterprise_model(0.6).tiers(),
                                  classes);

  const CertifyReport cert = certify_model(doomed, default_box(doomed));
  const lint::LintReport lint_report = lint::lint_model(doomed);

  for (const auto& p : cert.properties) {
    EXPECT_NE(p.verdict, Verdict::kUndecided)
        << p.property << ": a point box must always be decided";
  }

  const auto rho = core::tier_utilizations(doomed, doomed.max_frequencies());
  for (std::size_t i = 0; i < doomed.num_tiers(); ++i) {
    const std::string path = "tiers[" + std::to_string(i) + "]";
    const auto* l = find_diag(lint_report, "CPM-L001", path);
    const auto* c = find_diag(cert.diagnostics, "CPM-C001", path);
    EXPECT_EQ(l != nullptr, c != nullptr) << path;
    if (l != nullptr && c != nullptr) {
      // Both spell the defect with the shared overload_description; lint
      // appends " even at f_max", certify the witness corner.
      const std::string shared =
          core::overload_description(doomed, {false, i, rho[i]});
      EXPECT_EQ(l->message.rfind(shared, 0), 0u) << l->message;
      EXPECT_EQ(c->message.rfind(shared, 0), 0u) << c->message;
      EXPECT_NE(c->message.find("at box corner"), std::string::npos);
    }
  }

  const auto* l3 = find_diag(lint_report, "CPM-L003",
                             "classes[1].sla.max_mean_delay");
  const auto* c3 = find_diag(cert.diagnostics, "CPM-C003",
                             "classes[1].sla.max_mean_delay");
  ASSERT_NE(l3, nullptr);
  ASSERT_NE(c3, nullptr);
  const std::string shared = core::sla_floor_description(
      doomed, 1, units::seconds(1e-6),
      core::class_delay_floor(doomed, 1, doomed.max_frequencies()));
  EXPECT_EQ(c3->message.rfind(shared, 0), 0u) << c3->message;
}

TEST(Certify, WideBoxRefutesWithConcreteWitness) {
  const auto model = core::make_enterprise_model(0.6);
  BoxSpec box = default_box(model);
  box.rates[0] = core::Interval{model.classes()[0].rate.value(),
                                model.classes()[0].rate.value() * 100.0};

  const CertifyReport report = certify_model(model, box);
  const auto* stab = find_property(report, "stability[" +
                                               model.tiers()[0].name + "]");
  ASSERT_NE(stab, nullptr);
  EXPECT_EQ(stab->verdict, Verdict::kRefuted);
  ASSERT_TRUE(stab->witness.valid);
  EXPECT_GE(stab->witness.value, 1.0);

  // The witness must be a real point the concrete analyzer rejects.
  const core::ClusterModel at = model_at(model, stab->witness.point);
  EXPECT_GE(core::tier_utilizations(at, stab->witness.point.frequencies)[0],
            1.0);
  EXPECT_FALSE(at.stable_at(stab->witness.point.frequencies));
}

TEST(Certify, ModestBoxProvesEverySla) {
  const auto model = core::make_enterprise_model(0.6);
  BoxSpec box = default_box(model);
  for (auto& r : box.rates) r = core::Interval{r.lo * 0.9, r.hi * 1.05};
  for (auto& m : box.mu_scale) m = core::Interval{0.97, 1.03};

  const CertifyReport report = certify_model(model, box);
  EXPECT_TRUE(report.all_proved()) << render_certify_text(report, "m");
  // Root enclosures must still contain the nominal point's values.
  const auto ev = model.evaluate(model.max_frequencies());
  ASSERT_TRUE(ev.stable);
  for (std::size_t k = 0; k < model.num_classes(); ++k) {
    const auto* p = find_property(
        report, "sla-mean[" + model.classes()[k].name + "]");
    if (p == nullptr) continue;
    EXPECT_TRUE(p->bound.contains(ev.net.e2e_delay[k].value())) << p->property;
  }
}

TEST(Certify, BisectionDecidesWhatDepthZeroCannot) {
  // Dependency-problem overestimation: at depth 0 a near-critical box
  // leaves the mean-delay enclosure too wide to prove a tight SLA, but
  // the true sup (at the congestion corner) is below it — bisection must
  // recover the proof.
  const auto base = core::make_enterprise_model(0.75);
  BoxSpec box = default_box(base);
  for (auto& r : box.rates) r = core::Interval{r.lo * 0.85, r.hi * 1.1};

  // Find the enclosure and the concrete worst corner with SLAs detached.
  auto relaxed = base.classes();
  for (auto& c : relaxed) c.sla = core::Sla{};
  relaxed[0].sla.max_mean_e2e_delay = units::seconds(1e9);
  const core::ClusterModel probe(base.tiers(), relaxed);
  CertifyOptions shallow;
  shallow.bisect_depth = 0;
  const auto* wide =
      find_property(certify_model(probe, box, shallow), "sla-mean[gold]");
  ASSERT_NE(wide, nullptr);
  ASSERT_TRUE(std::isfinite(wide->bound.hi));
  const ParameterPoint worst = congestion_corner(box);
  const auto worst_ev = model_at(probe, worst).evaluate(worst.frequencies);
  ASSERT_TRUE(worst_ev.stable);
  const double corner = worst_ev.net.e2e_delay[0].value();
  ASSERT_LT(corner, wide->bound.hi);

  // A target between the corner value and the loose bound: undecidable
  // at depth 0, proved with the default bisection budget.
  relaxed[0].sla.max_mean_e2e_delay = units::seconds(corner + 0.5 * (wide->bound.hi - corner));
  const core::ClusterModel tight(base.tiers(), relaxed);

  const auto* undecided =
      find_property(certify_model(tight, box, shallow), "sla-mean[gold]");
  ASSERT_NE(undecided, nullptr);
  EXPECT_EQ(undecided->verdict, Verdict::kUndecided);

  const CertifyReport deep = certify_model(tight, box);
  const auto* proved = find_property(deep, "sla-mean[gold]");
  ASSERT_NE(proved, nullptr);
  EXPECT_EQ(proved->verdict, Verdict::kProved) << proved->boxes_explored;
  EXPECT_GT(proved->boxes_explored, 1);
}

TEST(Certify, PercentileSlasAreCornerCheckedOnly) {
  auto classes = core::make_enterprise_model(0.6).classes();
  classes[0].sla.max_percentile_e2e_delay = units::seconds(1e9);  // never refuted
  const core::ClusterModel model(core::make_enterprise_model(0.6).tiers(),
                                 classes);
  BoxSpec box = default_box(model);
  box.rates[0] = core::Interval{box.rates[0].lo * 0.9, box.rates[0].hi * 1.1};

  const CertifyReport report = certify_model(model, box);
  const auto* p = find_property(report, "sla-percentile[gold]");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->verdict, Verdict::kUndecided);
  const auto* d = find_diag(report.diagnostics, "CPM-C006",
                            "classes[0].sla.max_percentile_delay");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("percentile"), std::string::npos);

  // On the point box the same SLA is decided concretely.
  const CertifyReport point = certify_model(model, default_box(model));
  EXPECT_EQ(find_property(point, "sla-percentile[gold]")->verdict,
            Verdict::kProved);
}

TEST(Certify, PowerBudgetProperty) {
  const auto model = core::make_enterprise_model(0.6);
  BoxSpec box = default_box(model);
  const double nominal = model.power_at(model.max_frequencies()).value();

  box.max_power_watts = units::watts(nominal * 1.5);
  EXPECT_TRUE(certify_model(model, box).all_proved());

  box.max_power_watts = units::watts(nominal * 0.5);
  const CertifyReport over = certify_model(model, box);
  const auto* p = find_property(over, "power-budget");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->verdict, Verdict::kRefuted);
  ASSERT_TRUE(p->witness.valid);
  EXPECT_GT(p->witness.value, box.max_power_watts.value());
  EXPECT_NE(find_diag(over.diagnostics, "CPM-C007", "certify.max_power_watts"),
            nullptr);
}

TEST(Certify, BoxJsonRoundTripAndValidation) {
  const auto model = core::make_enterprise_model(0.6);
  const Json spec = Json::parse(R"({
    "rates": {"gold": [3.0, 4.0], "silver": 2.5},
    "mu_scale": {"db": [0.9, 1.1]},
    "frequencies": {"web": [0.8, 1.0]},
    "max_power_watts": 1500
  })");
  const BoxSpec box = box_from_json(model, spec);
  EXPECT_EQ(box.rates[0].lo, 3.0);
  EXPECT_EQ(box.rates[0].hi, 4.0);
  EXPECT_TRUE(box.rates[1].is_point());
  EXPECT_EQ(box.rates[1].lo, 2.5);
  EXPECT_EQ(box.max_power_watts.value(), 1500.0);

  const BoxSpec round = box_from_json(model, box_to_json(box, model));
  for (std::size_t k = 0; k < box.rates.size(); ++k) {
    EXPECT_EQ(round.rates[k].lo, box.rates[k].lo);
    EXPECT_EQ(round.rates[k].hi, box.rates[k].hi);
  }

  const auto throws_c009 = [&](const char* text) {
    try {
      box_from_json(model, Json::parse(text));
      return false;
    } catch (const Error& e) {
      return std::string(e.what()).find("CPM-C009") != std::string::npos;
    }
  };
  EXPECT_TRUE(throws_c009(R"({"rates": {"nope": [1, 2]}})"));
  EXPECT_TRUE(throws_c009(R"({"rates": {"gold": [4, 1]}})"));
  EXPECT_TRUE(throws_c009(R"({"rates": {"gold": [-1, 2]}})"));
  EXPECT_TRUE(throws_c009(R"({"frequencies": {"web": [0.1, 0.5]}})"));
  EXPECT_TRUE(throws_c009(R"({"mu_scale": {"db": 0}})"));
  EXPECT_TRUE(throws_c009(R"({"unknown_key": 1})"));
  EXPECT_TRUE(throws_c009(R"({"max_power_watts": -5})"));
}

TEST(Certify, RenderJsonCarriesVerdictsAndWitness) {
  const auto model = core::make_enterprise_model(0.6);
  BoxSpec box = default_box(model);
  box.rates[0] = core::Interval{model.classes()[0].rate.value(),
                                model.classes()[0].rate.value() * 100.0};
  const CertifyReport report = certify_model(model, box);

  const Json doc =
      Json::parse(render_certify_json(report, "m.json", box, model).dump(2));
  EXPECT_EQ(doc.at("format").as_string(), "cpm-certify/v1");
  EXPECT_EQ(doc.at("file").as_string(), "m.json");
  EXPECT_GT(doc.at("verdicts").at("refuted").as_number(), 0.0);
  EXPECT_EQ(doc.at("properties").size(), report.properties.size());
  bool saw_witness = false;
  for (std::size_t i = 0; i < doc.at("properties").size(); ++i) {
    const Json& p = doc.at("properties").at(i);
    EXPECT_EQ(p.at("bound").size(), 2u);
    if (p.contains("witness")) {
      saw_witness = true;
      EXPECT_EQ(p.at("witness").at("rates").size(), model.num_classes());
    }
  }
  EXPECT_TRUE(saw_witness);
  EXPECT_EQ(doc.at("diagnostics").at("format").as_string(), "cpm-lint/v1");
}

TEST(Certify, RuleSetSilencesCertifyRules) {
  const auto model = core::make_enterprise_model(0.6);
  BoxSpec box = default_box(model);
  box.rates[0] = core::Interval{model.classes()[0].rate.value(),
                                model.classes()[0].rate.value() * 100.0};
  CertifyOptions options;
  options.rules.disable("CPM-C001");
  const CertifyReport report = certify_model(model, box, options);
  // The verdict still records the refutation; only the diagnostic is
  // silenced.
  EXPECT_GT(report.count(Verdict::kRefuted), 0u);
  for (const auto& d : report.diagnostics.diagnostics())
    EXPECT_NE(d.rule_id, "CPM-C001");
}

// --- Boundary agreement: lint, certify and runtime validation ----------

core::ClusterModel rho_exactly_one_model() {
  // One single-server FCFS tier, one class, lambda * E[S] == 1 exactly:
  // rate 2, demand mean 0.5, f == f_base so no rescaling happens.
  core::Tier tier;
  tier.name = "only";
  tier.servers = 1;
  tier.discipline = queueing::Discipline::kFcfs;
  auto dvfs = tier.power.dvfs();
  core::WorkloadClass cls;
  cls.name = "all";
  cls.rate = units::per_second(2.0 * dvfs.f_max.value());  // cancel the f_max speedup exactly...
  cls.route = {{0, Distribution::exponential(0.5)}};  // ...E[S] = 0.5
  // Guard the construction: rho must be exactly 1.0 at f_max.
  return core::ClusterModel({tier}, {cls});
}

TEST(CertifyBoundary, RhoExactlyOneAgreesAcrossLintCertifyAndRuntime) {
  const auto model = rho_exactly_one_model();
  const auto f = model.max_frequencies();
  ASSERT_EQ(core::tier_utilizations(model, f)[0], 1.0);

  // Runtime: the boundary is unstable (steady state needs rho < 1).
  EXPECT_FALSE(model.stable_at(f));
  EXPECT_FALSE(model.evaluate(f).stable);
  EXPECT_EQ(model.power_at(f).value(), kInf);

  // Lint: CPM-L001 fires with the shared description.
  const lint::LintReport lint_report = lint::lint_model(model);
  const auto* l = find_diag(lint_report, "CPM-L001", "tiers[0]");
  ASSERT_NE(l, nullptr);

  // Certify: the point box refutes stability with witness value 1.0 and
  // the identical shared-description prefix.
  const CertifyReport cert = certify_model(model, default_box(model));
  const auto* stab = find_property(cert, "stability[only]");
  ASSERT_NE(stab, nullptr);
  EXPECT_EQ(stab->verdict, Verdict::kRefuted);
  EXPECT_EQ(stab->witness.value, 1.0);
  const auto* c = find_diag(cert.diagnostics, "CPM-C001", "tiers[0]");
  ASSERT_NE(c, nullptr);
  const std::string shared =
      core::overload_description(model, {false, 0, 1.0});
  EXPECT_EQ(l->message.rfind(shared, 0), 0u) << l->message;
  EXPECT_EQ(c->message.rfind(shared, 0), 0u) << c->message;
}

TEST(CertifyBoundary, ZeroClassModelsAreRejectedEverywhere) {
  // The model type itself refuses empty tiers/classes, so certify can
  // never see one; the document-scope linter reports the same defect as
  // diagnostics instead of throwing.
  EXPECT_THROW(core::ClusterModel({}, {}), Error);
  EXPECT_THROW(
      core::ClusterModel(core::make_enterprise_model(0.6).tiers(), {}), Error);
  const lint::LintReport report =
      lint::lint_document(Json::parse(R"({"tiers": [], "classes": []})"));
  EXPECT_FALSE(report.diagnostics().empty());
}

TEST(CertifyBoundary, SingleServerTiersAgreeAtThePointBox) {
  // Single-server tiers take the exact single_server_delays path (no
  // Bondi-Buzen approximation): certify's point enclosure must pin the
  // concrete evaluation bit for bit.
  auto model = core::make_enterprise_model(0.6);
  std::vector<int> servers(model.num_tiers(), 1);
  // Keep it stable: shrink rates until every tier fits one server.
  core::ClusterModel single = model.with_servers(servers).with_rate_scale(0.1);
  const auto ev = single.evaluate(single.max_frequencies());
  ASSERT_TRUE(ev.stable);

  const CertifyReport cert = certify_model(single, default_box(single));
  EXPECT_TRUE(cert.all_proved());
  for (std::size_t k = 0; k < single.num_classes(); ++k) {
    const auto* p =
        find_property(cert, "sla-mean[" + single.classes()[k].name + "]");
    if (p == nullptr) continue;
    EXPECT_EQ(p->bound.lo, ev.net.e2e_delay[k].value()) << p->property;
    EXPECT_EQ(p->bound.hi, ev.net.e2e_delay[k].value()) << p->property;
  }
}

}  // namespace
}  // namespace cpm::certify
