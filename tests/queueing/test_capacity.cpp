#include "cpm/queueing/capacity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cpm/common/error.hpp"
#include "cpm/opt/constrained.hpp"

namespace cpm::queueing {
namespace {

TEST(Kleinrock, SymmetricCaseSplitsEvenly) {
  // Equal flows, equal costs: every station gets the same capacity.
  const auto r = kleinrock_assignment({1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, 6.0);
  ASSERT_TRUE(r.feasible);
  for (double mu : r.mu) EXPECT_NEAR(mu, 2.0, 1e-12);
  // Delay: each station 1/(2-1) = 1.
  EXPECT_NEAR(r.mean_delay.value(), 1.0, 1e-12);
}

TEST(Kleinrock, BudgetExactlyConsumed) {
  const std::vector<double> lambda = {0.5, 2.0, 1.0};
  const std::vector<double> cost = {1.0, 2.0, 0.5};
  const double budget = 9.0;
  const auto r = kleinrock_assignment(lambda, cost, budget);
  ASSERT_TRUE(r.feasible);
  double spent = 0.0;
  for (std::size_t i = 0; i < lambda.size(); ++i) spent += cost[i] * r.mu[i];
  EXPECT_NEAR(spent, budget, 1e-9);
  for (std::size_t i = 0; i < lambda.size(); ++i) EXPECT_GT(r.mu[i], lambda[i]);
}

TEST(Kleinrock, SquareRootRuleHolds)
{
  // The slack allocated to station i, scaled by sqrt(c_i / lambda_i),
  // must be constant across stations.
  const std::vector<double> lambda = {0.3, 1.2, 0.7};
  const std::vector<double> cost = {2.0, 1.0, 3.0};
  const auto r = kleinrock_assignment(lambda, cost, 12.0);
  ASSERT_TRUE(r.feasible);
  const double k0 = (r.mu[0] - lambda[0]) * std::sqrt(cost[0] / lambda[0]);
  for (std::size_t i = 1; i < lambda.size(); ++i) {
    const double ki = (r.mu[i] - lambda[i]) * std::sqrt(cost[i] / lambda[i]);
    EXPECT_NEAR(ki, k0, 1e-9);
  }
}

TEST(Kleinrock, MatchesNumericalConstrainedSolver) {
  // The closed form must agree with the generic augmented-Lagrangian
  // solver on the same program — the cross-check anchoring cpm::opt.
  const std::vector<double> lambda = {0.5, 1.5};
  const std::vector<double> cost = {1.0, 2.0};
  const double budget = 8.0;
  const auto exact = kleinrock_assignment(lambda, cost, budget);
  ASSERT_TRUE(exact.feasible);

  const double total = lambda[0] + lambda[1];
  auto delay = [&](const std::vector<double>& mu) {
    double t = 0.0;
    for (std::size_t i = 0; i < mu.size(); ++i) {
      if (mu[i] <= lambda[i]) return 1e18;
      t += lambda[i] / (mu[i] - lambda[i]);
    }
    return t / total;
  };
  std::vector<opt::Objective> cons = {[&](const std::vector<double>& mu) {
    return cost[0] * mu[0] + cost[1] * mu[1] - budget;
  }};
  const opt::Box box{{lambda[0] + 1e-6, lambda[1] + 1e-6}, {10.0, 10.0}};
  const auto numeric = opt::augmented_lagrangian(delay, cons, box, box.center());
  ASSERT_TRUE(numeric.feasible);
  EXPECT_NEAR(numeric.x[0], exact.mu[0], 1e-2);
  EXPECT_NEAR(numeric.x[1], exact.mu[1], 1e-2);
  EXPECT_NEAR(numeric.value, exact.mean_delay.value(), 1e-3);
}

TEST(Kleinrock, MoreBudgetLessDelay) {
  double prev = 1e18;
  for (double budget : {4.0, 6.0, 10.0, 20.0}) {
    const auto r = kleinrock_assignment({1.0, 1.0}, {1.0, 1.0}, budget);
    ASSERT_TRUE(r.feasible);
    EXPECT_LT(r.mean_delay.value(), prev);
    prev = r.mean_delay.value();
  }
}

TEST(Kleinrock, InfeasibleBudget) {
  // Budget below sum c_i lambda_i cannot stabilise the stations.
  const auto r = kleinrock_assignment({1.0, 1.0}, {1.0, 1.0}, 2.0);
  EXPECT_FALSE(r.feasible);
}

TEST(Kleinrock, Validation) {
  EXPECT_THROW(kleinrock_assignment({}, {}, 1.0), Error);
  EXPECT_THROW(kleinrock_assignment({1.0}, {1.0, 2.0}, 5.0), Error);
  EXPECT_THROW(kleinrock_assignment({0.0}, {1.0}, 5.0), Error);
  EXPECT_THROW(kleinrock_assignment({1.0}, {-1.0}, 5.0), Error);
}

}  // namespace
}  // namespace cpm::queueing
