#include "cpm/queueing/basic.hpp"

#include <gtest/gtest.h>

#include "cpm/common/error.hpp"

namespace cpm::queueing {
namespace {

TEST(Mm1, ClosedForm) {
  const double lambda = 0.5, mu = 1.0;
  const auto m = mm1(lambda, mu);
  EXPECT_DOUBLE_EQ(m.utilization, 0.5);
  EXPECT_NEAR(m.mean_sojourn, 1.0 / (mu - lambda), 1e-12);  // = 2
  EXPECT_NEAR(m.mean_wait, m.mean_sojourn - 1.0 / mu, 1e-12);
  EXPECT_NEAR(m.mean_in_system, lambda / (mu - lambda), 1e-12);  // L = 1
  EXPECT_NEAR(m.mean_queue_len, m.mean_in_system - m.utilization, 1e-12);
}

TEST(Mm1, ThrowsWhenUnstable) {
  EXPECT_THROW(mm1(1.0, 1.0), Error);
  EXPECT_THROW(mm1(2.0, 1.0), Error);
}

TEST(Mm1, ZeroArrivals) {
  const auto m = mm1(0.0, 1.0);
  EXPECT_DOUBLE_EQ(m.mean_wait, 0.0);
  EXPECT_DOUBLE_EQ(m.mean_sojourn, 1.0);
}

TEST(Mg1, ReducesToMm1ForExponentialService) {
  const double lambda = 0.7;
  const auto ref = mm1(lambda, 1.0);
  const auto m = mg1(lambda, Distribution::exponential(1.0));
  EXPECT_NEAR(m.mean_wait, ref.mean_wait, 1e-12);
  EXPECT_NEAR(m.mean_sojourn, ref.mean_sojourn, 1e-12);
}

TEST(Mg1, Md1HasHalfTheMm1Wait) {
  // Classic P-K consequence: deterministic service halves the queueing wait.
  const double lambda = 0.8;
  const auto exp_q = mg1(lambda, Distribution::exponential(1.0));
  const auto det_q = md1(lambda, 1.0);
  EXPECT_NEAR(det_q.mean_wait, 0.5 * exp_q.mean_wait, 1e-12);
}

TEST(Mg1, WaitGrowsWithScv) {
  const double lambda = 0.6;
  double prev = 0.0;
  for (double scv : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const auto m = mg1(lambda, Distribution::from_mean_scv(1.0, scv));
    EXPECT_GT(m.mean_wait, prev);
    prev = m.mean_wait;
  }
}

TEST(Mg1, PollaczekKhinchineExplicit) {
  // lambda=0.5, service: Erlang-2 mean 1 -> E[S^2] = 1.5.
  const auto m = mg1(0.5, Distribution::erlang(2, 1.0));
  const double expected_wq = 0.5 * 1.5 / (2.0 * (1.0 - 0.5));
  EXPECT_NEAR(m.mean_wait, expected_wq, 1e-12);
}

TEST(Mg1Ps, SojournInsensitiveToServiceLaw) {
  const double lambda = 0.5;
  const auto a = mg1_ps(lambda, Distribution::exponential(1.0));
  const auto b = mg1_ps(lambda, Distribution::hyper_exp2(1.0, 8.0));
  const auto c = mg1_ps(lambda, Distribution::deterministic(1.0));
  EXPECT_NEAR(a.mean_sojourn, 2.0, 1e-12);  // E[S]/(1-rho) = 1/0.5
  EXPECT_NEAR(b.mean_sojourn, a.mean_sojourn, 1e-12);
  EXPECT_NEAR(c.mean_sojourn, a.mean_sojourn, 1e-12);
}

TEST(QueueMetricsProperties, LittleLawConsistency) {
  for (double lambda : {0.1, 0.5, 0.9}) {
    const auto m = mg1(lambda, Distribution::erlang(3, 1.0));
    EXPECT_NEAR(m.mean_queue_len, lambda * m.mean_wait, 1e-12);
    EXPECT_NEAR(m.mean_in_system, lambda * m.mean_sojourn, 1e-12);
  }
}

}  // namespace
}  // namespace cpm::queueing
