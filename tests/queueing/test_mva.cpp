#include "cpm/queueing/mva.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cpm/common/error.hpp"
#include "cpm/queueing/basic.hpp"

namespace cpm::queueing {
namespace {

std::vector<ClosedStation> two_queues() {
  return {ClosedStation{"cpu", false, 1}, ClosedStation{"disk", false, 1}};
}

TEST(ExactMva, SingleCustomerSeesNoQueueing) {
  // N = 1: response = sum of demands, X = 1/(Z + R).
  const auto r = exact_mva(two_queues(), {0.2, 0.3}, 1, 1.0);
  EXPECT_NEAR(r.response_time[0], 0.5, 1e-12);
  EXPECT_NEAR(r.throughput[0], 1.0 / 1.5, 1e-12);
}

TEST(ExactMva, TwoCustomersClosedForm) {
  // Classic hand-computable case: D = {0.2, 0.3}, Z = 0.
  // N=1: R1 = .2, R2 = .3, X = 2? no: X = 1/.5 = 2, Q1 = .4, Q2 = .6.
  // N=2: R1 = .2(1.4) = .28, R2 = .3(1.6) = .48, R = .76, X = 2/.76.
  const auto r = exact_mva(two_queues(), {0.2, 0.3}, 2, 0.0);
  EXPECT_NEAR(r.response_time[0], 0.76, 1e-12);
  EXPECT_NEAR(r.throughput[0], 2.0 / 0.76, 1e-12);
  // Populations sum to N (no think time).
  EXPECT_NEAR(r.queue_len[0][0] + r.queue_len[0][1], 2.0, 1e-12);
}

TEST(ExactMva, ThroughputSaturatesAtBottleneck) {
  const std::vector<double> demands = {0.2, 0.5};
  double prev_x = 0.0;
  for (int n : {1, 2, 5, 10, 30, 80}) {
    const auto r = exact_mva(two_queues(), demands, n, 1.0);
    EXPECT_GE(r.throughput[0], prev_x - 1e-12);
    EXPECT_LE(r.throughput[0], 1.0 / 0.5 + 1e-9);  // bottleneck bound
    prev_x = r.throughput[0];
  }
  EXPECT_NEAR(prev_x, 2.0, 0.01);  // saturated at 1/D_max
}

TEST(ExactMva, DelayStationNeverQueues) {
  std::vector<ClosedStation> stations = {ClosedStation{"net", true, 1},
                                         ClosedStation{"cpu", false, 1}};
  const auto r = exact_mva(stations, {0.5, 0.2}, 20, 0.0);
  // Response always includes the full 0.5 network delay with no inflation.
  EXPECT_GE(r.response_time[0], 0.5 + 0.2);
  // The cpu saturates; its utilisation approaches 1.
  EXPECT_NEAR(r.station_utilization[1], 1.0, 0.02);
  EXPECT_DOUBLE_EQ(r.station_utilization[0], 0.0);
}

TEST(ExactMva, InteractiveResponseTimeLaw) {
  // R = N/X - Z must hold identically.
  for (int n : {1, 4, 16}) {
    const auto r = exact_mva(two_queues(), {0.1, 0.25}, n, 2.0);
    EXPECT_NEAR(r.response_time[0], n / r.throughput[0] - 2.0, 1e-9) << n;
  }
}

TEST(ExactMva, UtilizationLaw) {
  const auto r = exact_mva(two_queues(), {0.2, 0.3}, 8, 1.0);
  EXPECT_NEAR(r.station_utilization[0], r.throughput[0] * 0.2, 1e-12);
  EXPECT_NEAR(r.station_utilization[1], r.throughput[0] * 0.3, 1e-12);
}

TEST(ExactMva, MultiServerSeidmannLimits) {
  // 2-server station, light load: response ~ demand (no queueing);
  // heavy load: throughput -> c/D.
  std::vector<ClosedStation> st = {ClosedStation{"pool", false, 2}};
  const auto light = exact_mva(st, {0.4}, 1, 10.0);
  EXPECT_NEAR(light.response_time[0], 0.4, 1e-9);
  const auto heavy = exact_mva(st, {0.4}, 200, 0.0);
  EXPECT_NEAR(heavy.throughput[0], 2.0 / 0.4, 0.01);
}

TEST(ExactMva, ZeroPopulation) {
  const auto r = exact_mva(two_queues(), {0.2, 0.3}, 0, 1.0);
  EXPECT_DOUBLE_EQ(r.throughput[0], 0.0);
  EXPECT_DOUBLE_EQ(r.response_time[0], 0.0);
}

TEST(ApproximateMva, MatchesExactForSingleClass) {
  // Bard-Schweitzer converges near the exact answer for one class.
  const std::vector<double> demands = {0.2, 0.35};
  for (int n : {1, 3, 10, 40}) {
    const auto exact = exact_mva(two_queues(), demands, n, 1.0);
    const auto approx = approximate_mva(
        two_queues(), {ClosedClass{"c", n, 1.0}}, {demands});
    ASSERT_TRUE(approx.converged) << n;
    EXPECT_NEAR(approx.throughput[0], exact.throughput[0],
                0.05 * exact.throughput[0])
        << n;
    EXPECT_NEAR(approx.response_time[0], exact.response_time[0],
                0.10 * exact.response_time[0])
        << n;
  }
}

TEST(ApproximateMva, TwoClassesShareTheBottleneck) {
  std::vector<ClosedClass> classes = {ClosedClass{"a", 10, 1.0},
                                      ClosedClass{"b", 10, 1.0}};
  std::vector<std::vector<double>> demands = {{0.30, 0.05}, {0.05, 0.30}};
  const auto r = approximate_mva(two_queues(), classes, demands);
  ASSERT_TRUE(r.converged);
  // Symmetric problem: equal throughputs and responses.
  EXPECT_NEAR(r.throughput[0], r.throughput[1], 1e-6);
  EXPECT_NEAR(r.response_time[0], r.response_time[1], 1e-6);
  // Total utilisation of each station below 1.
  for (double u : r.station_utilization) EXPECT_LT(u, 1.0);
}

TEST(ApproximateMva, MorePopulationMoreResponse) {
  double prev = 0.0;
  for (int n : {2, 8, 32}) {
    const auto r = approximate_mva(
        two_queues(), {ClosedClass{"c", n, 0.5}}, {{0.2, 0.3}});
    EXPECT_GT(r.response_time[0], prev);
    prev = r.response_time[0];
  }
}

TEST(AsymptoticBoundsTest, BoundExactMva) {
  const std::vector<double> demands = {0.2, 0.5};
  const auto b = asymptotic_bounds(two_queues(), demands, 1.0);
  EXPECT_NEAR(b.d_total, 0.7, 1e-12);
  EXPECT_NEAR(b.d_max, 0.5, 1e-12);
  EXPECT_NEAR(b.knee_population, 1.7 / 0.5, 1e-12);
  for (int n : {1, 2, 4, 8, 20}) {
    const auto r = exact_mva(two_queues(), demands, n, 1.0);
    EXPECT_LE(r.throughput[0], b.throughput_bound(n) + 1e-9) << n;
    EXPECT_GE(r.response_time[0], b.response_bound(n, 1.0) - 1e-9) << n;
  }
}

TEST(Mva, Validation) {
  EXPECT_THROW(exact_mva({}, {}, 1, 0.0), Error);
  EXPECT_THROW(exact_mva(two_queues(), {0.1}, 1, 0.0), Error);
  EXPECT_THROW(exact_mva(two_queues(), {0.1, -0.1}, 1, 0.0), Error);
  EXPECT_THROW(exact_mva(two_queues(), {0.1, 0.1}, -1, 0.0), Error);
  EXPECT_THROW(exact_mva(two_queues(), {0.1, 0.1}, 1, -1.0), Error);
  EXPECT_THROW(
      approximate_mva(two_queues(), {ClosedClass{"c", 0, 0.0}}, {{0.1, 0.1}}),
      Error);
}

}  // namespace
}  // namespace cpm::queueing
