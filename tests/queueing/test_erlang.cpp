#include "cpm/queueing/erlang.hpp"

#include <gtest/gtest.h>

#include "cpm/common/error.hpp"
#include "cpm/queueing/basic.hpp"

namespace cpm::queueing {
namespace {

TEST(ErlangB, ZeroServersBlocksEverything) {
  EXPECT_DOUBLE_EQ(erlang_b(0, 5.0), 1.0);
}

TEST(ErlangB, ZeroLoadNeverBlocks) {
  EXPECT_DOUBLE_EQ(erlang_b(3, 0.0), 0.0);
}

TEST(ErlangB, OneServerClosedForm) {
  // B(1, a) = a / (1 + a).
  for (double a : {0.1, 0.5, 1.0, 2.0, 10.0})
    EXPECT_NEAR(erlang_b(1, a), a / (1.0 + a), 1e-12);
}

TEST(ErlangB, KnownTableValues) {
  // Classic traffic-engineering table entries.
  EXPECT_NEAR(erlang_b(5, 3.0), 0.11005, 1e-4);
  EXPECT_NEAR(erlang_b(10, 7.0), 0.078741, 1e-5);
  EXPECT_NEAR(erlang_b(2, 1.0), 0.2, 1e-12);  // 1/2 / (1 + 1 + 1/2) = 0.2
}

TEST(ErlangB, DecreasesWithServers) {
  double prev = erlang_b(1, 4.0);
  for (int c = 2; c <= 20; ++c) {
    const double b = erlang_b(c, 4.0);
    EXPECT_LT(b, prev);
    prev = b;
  }
}

TEST(ErlangC, OneServerEqualsRho) {
  // C(1, a) = a for a < 1 (probability of waiting in M/M/1 is rho).
  for (double a : {0.1, 0.5, 0.9})
    EXPECT_NEAR(erlang_c(1, a), a, 1e-12);
}

TEST(ErlangC, KnownValues) {
  // C(2, 1) = 1/3; standard textbook value.
  EXPECT_NEAR(erlang_c(2, 1.0), 1.0 / 3.0, 1e-12);
  // c=10, a=8 -> ~0.4092 (Erlang-C tables).
  EXPECT_NEAR(erlang_c(10, 8.0), 0.4092, 5e-4);
}

TEST(ErlangC, AtLeastErlangB) {
  for (int c : {2, 5, 10}) {
    const double a = 0.7 * c;
    EXPECT_GE(erlang_c(c, a), erlang_b(c, a));
  }
}

TEST(ErlangC, RequiresStability) {
  EXPECT_THROW(erlang_c(2, 2.0), Error);
  EXPECT_THROW(erlang_c(2, 2.5), Error);
}

TEST(MmcWait, ReducesToMm1AtOneServer) {
  const double lambda = 0.8, mu = 1.0;
  const auto m = mm1(lambda, mu);
  EXPECT_NEAR(mmc_mean_wait(1, lambda, mu), m.mean_wait, 1e-12);
  EXPECT_NEAR(mmc_mean_sojourn(1, lambda, mu), m.mean_sojourn, 1e-12);
}

TEST(MmcWait, ZeroArrivalsZeroWait) {
  EXPECT_DOUBLE_EQ(mmc_mean_wait(3, 0.0, 1.0), 0.0);
}

TEST(MmcWait, MoreServersWaitLess) {
  const double lambda = 3.0, mu = 1.0;
  double prev = mmc_mean_wait(4, lambda, mu);
  for (int c = 5; c <= 12; ++c) {
    const double w = mmc_mean_wait(c, lambda, mu);
    EXPECT_LT(w, prev);
    prev = w;
  }
}

TEST(MmcWait, KnownValue) {
  // M/M/2 with lambda=1.5, mu=1: a=1.5, C(2,1.5)=0.6428..., W=C/(2-1.5).
  const double c_prob = erlang_c(2, 1.5);
  EXPECT_NEAR(mmc_mean_wait(2, 1.5, 1.0), c_prob / 0.5, 1e-12);
  EXPECT_NEAR(c_prob, 9.0 / 14.0, 1e-12);  // closed form for c=2
}

TEST(MmcWait, ThrowsWhenUnstable) {
  EXPECT_THROW(mmc_mean_wait(2, 2.0, 1.0), Error);
}

}  // namespace
}  // namespace cpm::queueing
