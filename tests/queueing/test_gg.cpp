#include "cpm/queueing/gg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cpm/common/error.hpp"
#include "cpm/common/rng.hpp"
#include "cpm/queueing/erlang.hpp"
#include "cpm/sim/simulator.hpp"
#include "cpm/workload/trace.hpp"

namespace cpm::queueing {
namespace {

TEST(Ggc, ExactForMMc) {
  // Ca^2 = Cs^2 = 1 reproduces M/M/c exactly.
  for (int c : {1, 3}) {
    const double lambda = 0.7 * c;
    const auto gg = ggc(c, lambda, 1.0, Distribution::exponential(1.0));
    EXPECT_NEAR(gg.mean_wait, mmc_mean_wait(c, lambda, 1.0), 1e-12) << c;
  }
}

TEST(Gg1, MatchesPollaczekKhinchineForMG1) {
  // Ca^2 = 1 with general service: (1 + Cs^2)/2 * Wq(M/M/1) is exactly
  // the P-K wait for M/G/1.
  for (double scv : {0.25, 0.5, 2.0, 4.0}) {
    const auto service = Distribution::from_mean_scv(1.0, scv);
    const auto approx = gg1(0.8, 1.0, service);
    const auto exact = mg1(0.8, service);
    EXPECT_NEAR(approx.mean_wait, exact.mean_wait, 1e-9) << scv;
  }
}

TEST(Gg1, DeterministicArrivalsAndServiceWaitNothing) {
  // D/D/1 below saturation has zero wait; the approximation agrees.
  const auto m = gg1(0.8, 0.0, Distribution::deterministic(1.0));
  EXPECT_NEAR(m.mean_wait, 0.0, 1e-12);
}

TEST(Gg1, BurstierArrivalsWaitLonger) {
  double prev = 0.0;
  for (double ca2 : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const auto m = gg1(0.8, ca2, Distribution::exponential(1.0));
    EXPECT_GT(m.mean_wait, prev);
    prev = m.mean_wait;
  }
}

TEST(Gg1, ErlangRenewalArrivalsMatchSimulatedReplay) {
  // Build an Erlang-3 renewal arrival trace (Ca^2 = 1/3), replay it
  // through the simulator, and compare with the Allen-Cunneen estimate.
  Rng rng(55);
  const auto gaps = Distribution::erlang(3, 1.25);  // rate 0.8
  std::vector<double> times;
  double t = 0.0;
  while (t < 6000.0) {
    t += gaps.sample(rng);
    times.push_back(t);
  }
  const auto trace = workload::ArrivalTrace::from_timestamps(std::move(times));
  EXPECT_NEAR(trace.stats().interarrival_scv, 1.0 / 3.0, 0.03);

  sim::SimConfig cfg;
  cfg.stations = {sim::SimStation{"s", 1, Discipline::kFcfs, units::watts(0.0), units::watts(0.0), 1.0}};
  sim::SimClass cls;
  cls.name = "renewal";
  cls.route = {Visit{0, Distribution::exponential(1.0)}};
  cls.arrival_times = trace.timestamps();
  cfg.classes = {cls};
  cfg.warmup_time = 300.0;
  cfg.end_time = 6000.0;
  cfg.seed = 5;
  const auto r = sim::simulate(cfg);

  const auto approx = gg1(0.8, 1.0 / 3.0, Distribution::exponential(1.0));
  // Two-moment approximations for E/M/1 are good to ~10%.
  EXPECT_NEAR(r.classes[0].mean_e2e_delay.value(), approx.mean_sojourn,
              0.12 * approx.mean_sojourn);
  // And clearly better than the Poisson assumption, which overestimates.
  const auto poisson = mm1(0.8, 1.0);
  EXPECT_LT(std::abs(r.classes[0].mean_e2e_delay.value() - approx.mean_sojourn),
            std::abs(r.classes[0].mean_e2e_delay.value() - poisson.mean_sojourn));
}

TEST(Ggc, Validation) {
  EXPECT_THROW(ggc(0, 1.0, 1.0, Distribution::exponential(1.0)), Error);
  EXPECT_THROW(ggc(1, -1.0, 1.0, Distribution::exponential(1.0)), Error);
  EXPECT_THROW(ggc(1, 1.0, -1.0, Distribution::exponential(1.0)), Error);
  EXPECT_THROW(ggc(1, 1.0, 1.0, Distribution::exponential(1.0)), Error);  // rho=1
}

}  // namespace
}  // namespace cpm::queueing
