#include "cpm/queueing/priority.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cpm/common/error.hpp"
#include "cpm/queueing/basic.hpp"
#include "cpm/queueing/erlang.hpp"

namespace cpm::queueing {
namespace {

std::vector<ClassFlow> two_classes() {
  return {ClassFlow{units::per_second(0.3), Distribution::exponential(1.0)},
          ClassFlow{units::per_second(0.4), Distribution::exponential(1.0)}};
}

TEST(StationUtilization, SumsLoads) {
  EXPECT_NEAR(station_utilization(1, two_classes()), 0.7, 1e-12);
  EXPECT_NEAR(station_utilization(2, two_classes()), 0.35, 1e-12);
}

TEST(StationStable, Boundary) {
  EXPECT_TRUE(station_stable(1, two_classes()));
  std::vector<ClassFlow> heavy = {ClassFlow{units::per_second(1.0), Distribution::exponential(1.0)}};
  EXPECT_FALSE(station_stable(1, heavy));
  EXPECT_TRUE(station_stable(2, heavy));
}

TEST(AnalyzeStation, SingleClassAllDisciplinesMatchMg1Sojourn) {
  // With one class there is no one to preempt or prioritise: FCFS, NP and
  // PS coincide with M/G/1 in mean sojourn (PR too, for the mean).
  const std::vector<ClassFlow> flows = {
      ClassFlow{units::per_second(0.6), Distribution::erlang(2, 1.0)}};
  const auto ref = mg1(0.6, Distribution::erlang(2, 1.0));
  for (auto d : {Discipline::kFcfs, Discipline::kNonPreemptivePriority,
                 Discipline::kPreemptiveResume}) {
    const auto m = analyze_station(1, d, flows);
    EXPECT_NEAR(m.mean_sojourn[0], ref.mean_sojourn, 1e-12)
        << discipline_name(d);
  }
  const auto ps = analyze_station(1, Discipline::kProcessorSharing, flows);
  const auto ps_ref = mg1_ps(0.6, Distribution::erlang(2, 1.0));
  EXPECT_NEAR(ps.mean_sojourn[0], ps_ref.mean_sojourn, 1e-12);
}

TEST(AnalyzeStation, FcfsGivesEqualWaits) {
  const auto m = analyze_station(1, Discipline::kFcfs, two_classes());
  EXPECT_NEAR(m.mean_wait[0], m.mean_wait[1], 1e-12);
}

TEST(AnalyzeStation, CobhamExplicitTwoClass) {
  // lambda = (0.3, 0.4), exponential mean 1 services.
  // R = sum lambda_i E[S^2]/2 = (0.3 + 0.4) * 2 / 2 = 0.7.
  // W1 = 0.7 / ((1)(1-0.3)) = 1, W2 = 0.7 / ((1-0.3)(1-0.7)) = 10/3.
  const auto m =
      analyze_station(1, Discipline::kNonPreemptivePriority, two_classes());
  EXPECT_NEAR(m.mean_wait[0], 1.0, 1e-12);
  EXPECT_NEAR(m.mean_wait[1], 10.0 / 3.0, 1e-9);
}

TEST(AnalyzeStation, PreemptiveResumeExplicitTwoClass) {
  // Class 0 sees a pure M/M/1: T0 = 1/(1-0.3) * (1 + 0.3*1/(1-0.3))... use
  // the standard form: T1 = E[S1]/(1) + R1/((1)(1-s1)) with R1 = 0.3.
  // T0 = 1 + 0.3/(0.7) = 1.42857; delay0 = 0.42857.
  const auto m =
      analyze_station(1, Discipline::kPreemptiveResume, two_classes());
  EXPECT_NEAR(m.mean_sojourn[0], 1.0 + 0.3 / 0.7, 1e-9);
  // Class 0's mean sojourn equals M/M/1 with only class-0 traffic:
  const auto solo = mm1(0.3, 1.0);
  EXPECT_NEAR(m.mean_sojourn[0], solo.mean_sojourn, 1e-9);
  // T1 = E[S2]/(1-s1) + (R1+R2)/((1-s1)(1-s1-s2))
  const double expected_t2 = 1.0 / 0.7 + 0.7 / (0.7 * 0.3);
  EXPECT_NEAR(m.mean_sojourn[1], expected_t2, 1e-9);
}

TEST(AnalyzeStation, PreemptiveClassZeroImmuneToLowerClasses) {
  // Under preemptive-resume, class 0 metrics must not change when class-1
  // load changes.
  std::vector<ClassFlow> light = {ClassFlow{units::per_second(0.3), Distribution::exponential(1.0)},
                                  ClassFlow{units::per_second(0.1), Distribution::exponential(1.0)}};
  std::vector<ClassFlow> heavy = {ClassFlow{units::per_second(0.3), Distribution::exponential(1.0)},
                                  ClassFlow{units::per_second(0.6), Distribution::exponential(1.0)}};
  const auto a = analyze_station(1, Discipline::kPreemptiveResume, light);
  const auto b = analyze_station(1, Discipline::kPreemptiveResume, heavy);
  EXPECT_NEAR(a.mean_sojourn[0], b.mean_sojourn[0], 1e-12);
}

TEST(AnalyzeStation, NonPreemptiveClassZeroSeesLowerClassResidual) {
  // Unlike PR, NP class 0 does feel lower classes through residual service.
  std::vector<ClassFlow> light = {ClassFlow{units::per_second(0.3), Distribution::exponential(1.0)},
                                  ClassFlow{units::per_second(0.1), Distribution::exponential(1.0)}};
  std::vector<ClassFlow> heavy = {ClassFlow{units::per_second(0.3), Distribution::exponential(1.0)},
                                  ClassFlow{units::per_second(0.6), Distribution::exponential(1.0)}};
  const auto a = analyze_station(1, Discipline::kNonPreemptivePriority, light);
  const auto b = analyze_station(1, Discipline::kNonPreemptivePriority, heavy);
  EXPECT_GT(b.mean_wait[0], a.mean_wait[0]);
}

TEST(AnalyzeStation, PriorityOrderingHolds) {
  std::vector<ClassFlow> flows = {
      ClassFlow{units::per_second(0.2), Distribution::exponential(1.0)},
      ClassFlow{units::per_second(0.2), Distribution::exponential(1.0)},
      ClassFlow{units::per_second(0.2), Distribution::exponential(1.0)},
      ClassFlow{units::per_second(0.2), Distribution::exponential(1.0)},
  };
  for (auto d : {Discipline::kNonPreemptivePriority, Discipline::kPreemptiveResume}) {
    const auto m = analyze_station(1, d, flows);
    for (std::size_t k = 1; k < flows.size(); ++k)
      EXPECT_GT(m.mean_wait[k], m.mean_wait[k - 1]) << discipline_name(d);
  }
}

TEST(AnalyzeStation, KleinrockConservationLaw) {
  // For M/G/1 work-conserving, non-preemptive disciplines:
  // sum_k rho_k W_k is invariant (equals rho * W_fcfs).
  std::vector<ClassFlow> flows = {
      ClassFlow{units::per_second(0.25), Distribution::erlang(2, 0.8)},
      ClassFlow{units::per_second(0.30), Distribution::exponential(0.9)},
      ClassFlow{units::per_second(0.10), Distribution::hyper_exp2(1.2, 3.0)},
  };
  const auto fcfs = analyze_station(1, Discipline::kFcfs, flows);
  const auto np = analyze_station(1, Discipline::kNonPreemptivePriority, flows);
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t k = 0; k < flows.size(); ++k) {
    lhs += np.rho[k] * np.mean_wait[k];
    rhs += fcfs.rho[k] * fcfs.mean_wait[k];
  }
  EXPECT_NEAR(lhs, rhs, 1e-9);
}

TEST(AnalyzeStation, MmcPriorityEqualRatesMatchesExactFormula) {
  // For equal exponential rates, the Bondi-Buzen scaling reduces to the
  // exact M/M/c non-preemptive priority result:
  // W_k = C(c, a) / (c mu (1 - s_{k-1})(1 - s_k)).
  const int c = 3;
  const double mu = 2.0;
  std::vector<ClassFlow> flows = {
      ClassFlow{units::per_second(1.2), Distribution::exponential(1.0 / mu)},
      ClassFlow{units::per_second(1.8), Distribution::exponential(1.0 / mu)},
  };
  const double a = (1.2 + 1.8) / mu;
  const double s1 = 1.2 / (c * mu);
  const double s2 = s1 + 1.8 / (c * mu);
  const double w1 = erlang_c(c, a) / (c * mu * (1.0 - s1));
  const double w2 = erlang_c(c, a) / (c * mu * (1.0 - s1) * (1.0 - s2));
  const auto m = analyze_station(c, Discipline::kNonPreemptivePriority, flows);
  EXPECT_NEAR(m.mean_wait[0], w1, 1e-9);
  EXPECT_NEAR(m.mean_wait[1], w2, 1e-9);
}

TEST(AnalyzeStation, MultiServerFcfsMatchesErlangCForExponential) {
  std::vector<ClassFlow> flows = {ClassFlow{units::per_second(2.0), Distribution::exponential(0.5)}};
  const auto m = analyze_station(4, Discipline::kFcfs, flows);
  EXPECT_NEAR(m.mean_wait[0], mmc_mean_wait(4, 2.0, 2.0), 1e-9);
}

TEST(AnalyzeStation, ZeroRateClassHasDefinedWait) {
  // A zero-rate (probe) class still gets the wait it would experience.
  std::vector<ClassFlow> flows = {
      ClassFlow{units::per_second(0.5), Distribution::exponential(1.0)},
      ClassFlow{units::per_second(0.0), Distribution::exponential(1.0)},
  };
  const auto m = analyze_station(1, Discipline::kNonPreemptivePriority, flows);
  EXPECT_GT(m.mean_wait[1], 0.0);
  EXPECT_DOUBLE_EQ(m.rho[1], 0.0);
}

TEST(AnalyzeStation, RejectsUnstableAndMalformed) {
  std::vector<ClassFlow> heavy = {ClassFlow{units::per_second(2.0), Distribution::exponential(1.0)}};
  EXPECT_THROW(analyze_station(1, Discipline::kFcfs, heavy), Error);
  EXPECT_THROW(analyze_station(0, Discipline::kFcfs, two_classes()), Error);
  EXPECT_THROW(analyze_station(1, Discipline::kFcfs, {}), Error);
  std::vector<ClassFlow> negative = {ClassFlow{units::per_second(-0.1), Distribution::exponential(1.0)}};
  EXPECT_THROW(analyze_station(1, Discipline::kFcfs, negative), Error);
}

TEST(AnalyzeStation, LittleLawPerClass) {
  const auto m =
      analyze_station(1, Discipline::kNonPreemptivePriority, two_classes());
  EXPECT_NEAR(m.mean_queue_len[0], 0.3 * m.mean_wait[0], 1e-12);
  EXPECT_NEAR(m.mean_in_system[1], 0.4 * m.mean_sojourn[1], 1e-12);
}

TEST(DisciplineName, AllNamed) {
  EXPECT_STREQ(discipline_name(Discipline::kFcfs), "fcfs");
  EXPECT_STREQ(discipline_name(Discipline::kNonPreemptivePriority), "np-priority");
  EXPECT_STREQ(discipline_name(Discipline::kPreemptiveResume), "p-priority");
  EXPECT_STREQ(discipline_name(Discipline::kProcessorSharing), "ps");
}

// Parameterised load sweep: priority waits stay finite and ordered up to
// high utilisation.
class PrioritySweep : public ::testing::TestWithParam<double> {};

TEST_P(PrioritySweep, OrderedAndFinite) {
  const double rho = GetParam();
  std::vector<ClassFlow> flows = {
      ClassFlow{units::per_second(rho / 3.0), Distribution::exponential(1.0)},
      ClassFlow{units::per_second(rho / 3.0), Distribution::exponential(1.0)},
      ClassFlow{units::per_second(rho / 3.0), Distribution::exponential(1.0)},
  };
  const auto m = analyze_station(1, Discipline::kNonPreemptivePriority, flows);
  EXPECT_TRUE(std::isfinite(m.mean_wait[2]));
  EXPECT_LT(m.mean_wait[0], m.mean_wait[1]);
  EXPECT_LT(m.mean_wait[1], m.mean_wait[2]);
}

INSTANTIATE_TEST_SUITE_P(Loads, PrioritySweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 0.99));

}  // namespace
}  // namespace cpm::queueing
