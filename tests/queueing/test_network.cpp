#include "cpm/queueing/network.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cpm/common/error.hpp"
#include "cpm/queueing/basic.hpp"

namespace cpm::queueing {
namespace {

NetworkStation fcfs_station(const std::string& name, int servers = 1) {
  return NetworkStation{name, servers, Discipline::kFcfs};
}

TEST(ValidateNetwork, CatchesMalformedInput) {
  std::vector<NetworkStation> stations = {fcfs_station("s0")};
  std::vector<CustomerClass> classes = {
      CustomerClass{"c", units::per_second(1.0), {Visit{0, Distribution::exponential(0.1)}}}};
  EXPECT_NO_THROW(validate_network(stations, classes));

  std::vector<CustomerClass> bad_route = {
      CustomerClass{"c", units::per_second(1.0), {Visit{5, Distribution::exponential(0.1)}}}};
  EXPECT_THROW(validate_network(stations, bad_route), Error);

  std::vector<CustomerClass> empty_route = {CustomerClass{"c", units::per_second(1.0), {}}};
  EXPECT_THROW(validate_network(stations, empty_route), Error);

  std::vector<CustomerClass> negative = {
      CustomerClass{"c", units::per_second(-1.0), {Visit{0, Distribution::exponential(0.1)}}}};
  EXPECT_THROW(validate_network(stations, negative), Error);

  EXPECT_THROW(validate_network({}, classes), Error);
  EXPECT_THROW(validate_network(stations, {}), Error);
}

TEST(AnalyzeNetwork, SingleStationMatchesMm1) {
  std::vector<NetworkStation> stations = {fcfs_station("only")};
  std::vector<CustomerClass> classes = {
      CustomerClass{"c", units::per_second(0.5), {Visit{0, Distribution::exponential(1.0)}}}};
  const auto net = analyze_network(stations, classes);
  const auto ref = mm1(0.5, 1.0);
  EXPECT_NEAR(net.e2e_delay[0].value(), ref.mean_sojourn, 1e-12);
  EXPECT_NEAR(net.mean_e2e_delay.value(), ref.mean_sojourn, 1e-12);
  EXPECT_NEAR(net.station_utilization[0], 0.5, 1e-12);
}

TEST(AnalyzeNetwork, TandemMm1SumsSojourns) {
  // Jackson: Poisson in, exponential service, FCFS -> each station is an
  // independent M/M/1 and E2E delay sums exactly.
  std::vector<NetworkStation> stations = {fcfs_station("a"), fcfs_station("b"),
                                          fcfs_station("c")};
  const double lambda = 0.4;
  std::vector<CustomerClass> classes = {
      CustomerClass{"c",
                    units::per_second(lambda),
                    {Visit{0, Distribution::exponential(1.0)},
                     Visit{1, Distribution::exponential(0.5)},
                     Visit{2, Distribution::exponential(2.0)}}}};
  const auto net = analyze_network(stations, classes);
  const double expected = mm1(lambda, 1.0).mean_sojourn +
                          mm1(lambda, 2.0).mean_sojourn +
                          mm1(lambda, 0.5).mean_sojourn;
  EXPECT_NEAR(net.e2e_delay[0].value(), expected, 1e-12);
  ASSERT_EQ(net.visit_sojourn[0].size(), 3u);
  EXPECT_NEAR(net.visit_sojourn[0][0], mm1(lambda, 1.0).mean_sojourn, 1e-12);
}

TEST(AnalyzeNetwork, RevisitsAggregateLoad) {
  // A class visiting the same station twice doubles that station's load.
  std::vector<NetworkStation> stations = {fcfs_station("s")};
  std::vector<CustomerClass> classes = {
      CustomerClass{"c",
                    units::per_second(0.3),
                    {Visit{0, Distribution::exponential(1.0)},
                     Visit{0, Distribution::exponential(1.0)}}}};
  const auto net = analyze_network(stations, classes);
  EXPECT_NEAR(net.station_utilization[0], 0.6, 1e-12);
  // Station behaves as M/M/1 with lambda = 0.6; the class passes twice.
  const auto ref = mm1(0.6, 1.0);
  EXPECT_NEAR(net.e2e_delay[0].value(), 2.0 * ref.mean_sojourn, 1e-12);
}

TEST(AnalyzeNetwork, ClassesOnlyLoadTheirOwnRoute) {
  std::vector<NetworkStation> stations = {fcfs_station("a"), fcfs_station("b")};
  std::vector<CustomerClass> classes = {
      CustomerClass{"left", units::per_second(0.5), {Visit{0, Distribution::exponential(1.0)}}},
      CustomerClass{"right", units::per_second(0.25), {Visit{1, Distribution::exponential(1.0)}}}};
  const auto net = analyze_network(stations, classes);
  EXPECT_NEAR(net.station_utilization[0], 0.5, 1e-12);
  EXPECT_NEAR(net.station_utilization[1], 0.25, 1e-12);
  EXPECT_NEAR(net.e2e_delay[0].value(), mm1(0.5, 1.0).mean_sojourn, 1e-12);
  EXPECT_NEAR(net.e2e_delay[1].value(), mm1(0.25, 1.0).mean_sojourn, 1e-12);
  // Per-station rho of the absent class is zero.
  EXPECT_DOUBLE_EQ(net.station_rho[0][1], 0.0);
  EXPECT_DOUBLE_EQ(net.station_rho[1][0], 0.0);
}

TEST(AnalyzeNetwork, TrafficWeightedMeanDelay) {
  std::vector<NetworkStation> stations = {fcfs_station("a")};
  std::vector<CustomerClass> classes = {
      CustomerClass{"fast", units::per_second(0.1), {Visit{0, Distribution::exponential(0.5)}}},
      CustomerClass{"slow", units::per_second(0.3), {Visit{0, Distribution::exponential(1.0)}}}};
  const auto net = analyze_network(stations, classes);
  const double expected =
      (0.1 * net.e2e_delay[0].value() + 0.3 * net.e2e_delay[1].value()) / 0.4;
  EXPECT_NEAR(net.mean_e2e_delay.value(), expected, 1e-12);
  EXPECT_NEAR(net.total_rate.value(), 0.4, 1e-12);
}

TEST(AnalyzeNetwork, PriorityOrderingAcrossNetwork) {
  std::vector<NetworkStation> stations = {
      NetworkStation{"a", 1, Discipline::kNonPreemptivePriority},
      NetworkStation{"b", 1, Discipline::kNonPreemptivePriority}};
  auto route = [](double mean) {
    return std::vector<Visit>{Visit{0, Distribution::exponential(mean)},
                              Visit{1, Distribution::exponential(mean)}};
  };
  std::vector<CustomerClass> classes = {CustomerClass{"hi", units::per_second(0.3), route(1.0)},
                                        CustomerClass{"lo", units::per_second(0.3), route(1.0)}};
  const auto net = analyze_network(stations, classes);
  EXPECT_LT(net.e2e_delay[0], net.e2e_delay[1]);
}

TEST(AnalyzeNetwork, ThrowsOnUnstableStation) {
  std::vector<NetworkStation> stations = {fcfs_station("s")};
  std::vector<CustomerClass> classes = {
      CustomerClass{"c", units::per_second(2.0), {Visit{0, Distribution::exponential(1.0)}}}};
  EXPECT_FALSE(network_stable(stations, classes));
  EXPECT_THROW(analyze_network(stations, classes), Error);
}

TEST(NetworkUtilizations, MultiServerDividesLoad) {
  std::vector<NetworkStation> stations = {fcfs_station("s", 4)};
  std::vector<CustomerClass> classes = {
      CustomerClass{"c", units::per_second(2.0), {Visit{0, Distribution::exponential(1.0)}}}};
  const auto util = network_utilizations(stations, classes);
  EXPECT_NEAR(util[0], 0.5, 1e-12);
}

TEST(AnalyzeNetwork, StationWithNoVisitorsIsIdle) {
  std::vector<NetworkStation> stations = {fcfs_station("used"), fcfs_station("idle")};
  std::vector<CustomerClass> classes = {
      CustomerClass{"c", units::per_second(0.5), {Visit{0, Distribution::exponential(1.0)}}}};
  const auto net = analyze_network(stations, classes);
  EXPECT_DOUBLE_EQ(net.station_utilization[1], 0.0);
}

TEST(PercentileDelay, Mm1SojournIsExactlyExponential) {
  // Single M/M/1: sojourn ~ Exp(mu - lambda); the gamma fit recovers
  // shape 1 and hence the exact quantile.
  std::vector<NetworkStation> stations = {fcfs_station("s")};
  std::vector<CustomerClass> classes = {
      CustomerClass{"c", units::per_second(0.5), {Visit{0, Distribution::exponential(1.0)}}}};
  const auto net = analyze_network(stations, classes);
  // Mean 2, variance 4 (Exp(0.5)).
  EXPECT_NEAR(net.e2e_delay[0].value(), 2.0, 1e-12);
  EXPECT_NEAR(net.e2e_delay_variance[0].value(), 4.0, 1e-9);
  for (double p : {0.5, 0.9, 0.95, 0.99}) {
    const double expected = -2.0 * std::log(1.0 - p);
    EXPECT_NEAR(percentile_e2e_delay(net, 0, p).value(), expected, 1e-6 * expected);
  }
}

TEST(PercentileDelay, TakacsSecondMomentMm1) {
  // M/M/1 lambda=0.5, mu=1: E[W^2] = rho * 2/(mu-lambda)^2 = 4.
  std::vector<NetworkStation> stations = {fcfs_station("s")};
  std::vector<CustomerClass> classes = {
      CustomerClass{"c", units::per_second(0.5), {Visit{0, Distribution::exponential(1.0)}}}};
  const auto net = analyze_network(stations, classes);
  EXPECT_NEAR(net.station_wait_m2[0][0], 4.0, 1e-9);
}

TEST(PercentileDelay, DeterministicRouteHasServiceVarianceOnly) {
  // Zero arrivals elsewhere: a probe-like light class through empty-ish
  // stations; variance from waits plus service variance.
  std::vector<NetworkStation> stations = {fcfs_station("s")};
  std::vector<CustomerClass> classes = {
      CustomerClass{"c", units::per_second(1e-9), {Visit{0, Distribution::deterministic(1.0)}}}};
  const auto net = analyze_network(stations, classes);
  EXPECT_NEAR(net.e2e_delay_variance[0].value(), 0.0, 1e-8);
  // Near-degenerate variance: percentile collapses to (almost) the mean.
  EXPECT_NEAR(percentile_e2e_delay(net, 0, 0.95).value(), net.e2e_delay[0].value(), 1e-3);
}

TEST(PercentileDelay, TandemVarianceAdds) {
  std::vector<NetworkStation> stations = {fcfs_station("a"), fcfs_station("b")};
  std::vector<CustomerClass> classes = {
      CustomerClass{"c",
                    units::per_second(0.5),
                    {Visit{0, Distribution::exponential(1.0)},
                     Visit{1, Distribution::exponential(1.0)}}}};
  const auto net = analyze_network(stations, classes);
  // Two independent Exp(0.5) sojourns: variance 4 + 4.
  EXPECT_NEAR(net.e2e_delay_variance[0].value(), 8.0, 1e-9);
  // Sum of two iid exponentials is Erlang-2: p95 quantile known via the
  // gamma fit being EXACT here (shape = 16/8 = 2).
  const double q = percentile_e2e_delay(net, 0, 0.95).value();
  // Erlang-2 with rate 0.5: q solves 1 - e^{-x/2}(1 + x/2) = 0.95.
  EXPECT_NEAR(1.0 - std::exp(-q / 2.0) * (1.0 + q / 2.0), 0.95, 1e-9);
}

TEST(PercentileDelay, HigherPercentileIsLarger) {
  std::vector<NetworkStation> stations = {
      NetworkStation{"s", 1, Discipline::kNonPreemptivePriority}};
  std::vector<CustomerClass> classes = {
      CustomerClass{"hi", units::per_second(0.3), {Visit{0, Distribution::exponential(1.0)}}},
      CustomerClass{"lo", units::per_second(0.4), {Visit{0, Distribution::exponential(1.0)}}}};
  const auto net = analyze_network(stations, classes);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_GT(percentile_e2e_delay(net, k, 0.95), percentile_e2e_delay(net, k, 0.5));
    EXPECT_GT(percentile_e2e_delay(net, k, 0.95), net.e2e_delay[k]);
  }
}

TEST(PercentileDelay, InfiniteVarianceHeavyTail) {
  // Pareto shape 2.5 service: infinite third moment -> infinite wait m2 at
  // a FCFS station -> infinite variance -> +inf percentile (honest answer).
  std::vector<NetworkStation> stations = {fcfs_station("s")};
  std::vector<CustomerClass> classes = {
      CustomerClass{"c", units::per_second(0.5), {Visit{0, Distribution::pareto(2.5, 1.0)}}}};
  const auto net = analyze_network(stations, classes);
  EXPECT_TRUE(std::isinf(net.e2e_delay_variance[0].value()));
  EXPECT_TRUE(std::isinf(percentile_e2e_delay(net, 0, 0.95).value()));
}

TEST(PercentileDelay, Validation) {
  std::vector<NetworkStation> stations = {fcfs_station("s")};
  std::vector<CustomerClass> classes = {
      CustomerClass{"c", units::per_second(0.5), {Visit{0, Distribution::exponential(1.0)}}}};
  const auto net = analyze_network(stations, classes);
  EXPECT_THROW(percentile_e2e_delay(net, 5, 0.9), Error);
  EXPECT_THROW(percentile_e2e_delay(net, 0, 0.0), Error);
  EXPECT_THROW(percentile_e2e_delay(net, 0, 1.0), Error);
}

// Load sweep property: delay grows monotonically with load, toward
// saturation.
class NetworkLoadSweep : public ::testing::TestWithParam<double> {};

TEST_P(NetworkLoadSweep, DelayMonotoneInLoad) {
  const double rho = GetParam();
  std::vector<NetworkStation> stations = {
      NetworkStation{"a", 1, Discipline::kNonPreemptivePriority}};
  auto classes_at = [&](double load) {
    return std::vector<CustomerClass>{
        CustomerClass{"hi", units::per_second(load / 2.0), {Visit{0, Distribution::exponential(1.0)}}},
        CustomerClass{"lo", units::per_second(load / 2.0), {Visit{0, Distribution::exponential(1.0)}}}};
  };
  const auto at = analyze_network(stations, classes_at(rho));
  const auto above = analyze_network(stations, classes_at(rho + 0.02));
  EXPECT_GT(above.mean_e2e_delay, at.mean_e2e_delay);
}

INSTANTIATE_TEST_SUITE_P(Loads, NetworkLoadSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace cpm::queueing
