#include "cpm/queueing/mmck.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cpm/common/error.hpp"
#include "cpm/queueing/erlang.hpp"

namespace cpm::queueing {
namespace {

TEST(Mmck, LossSystemReducesToErlangB) {
  // K = c is the Erlang loss system: blocking = Erlang-B exactly.
  for (int c : {1, 2, 5, 10}) {
    for (double a : {0.5, 2.0, 0.9 * c}) {
      const auto m = mmck(c, c, a, 1.0);
      EXPECT_NEAR(m.blocking_probability, erlang_b(c, a), 1e-12)
          << "c=" << c << " a=" << a;
      EXPECT_DOUBLE_EQ(m.mean_queue_len, 0.0);  // no waiting room
    }
  }
}

TEST(Mmck, LargeCapacityConvergesToMmc) {
  const double lambda = 1.6, mu = 1.0;
  const int c = 2;  // rho = 0.8
  const auto finite = mmck(c, 400, lambda, mu);
  EXPECT_NEAR(finite.blocking_probability, 0.0, 1e-9);
  EXPECT_NEAR(finite.mean_wait, mmc_mean_wait(c, lambda, mu), 1e-6);
  EXPECT_NEAR(finite.mean_sojourn, mmc_mean_sojourn(c, lambda, mu), 1e-6);
}

TEST(Mmck, Mm11ClosedForm) {
  // M/M/1/1: blocking = rho/(1+rho), L = rho/(1+rho).
  const auto m = mmck(1, 1, 2.0, 1.0);
  EXPECT_NEAR(m.blocking_probability, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.mean_in_system, 2.0 / 3.0, 1e-12);
  // Accepted jobs never wait: sojourn = service time.
  EXPECT_NEAR(m.mean_sojourn, 1.0, 1e-12);
}

TEST(Mmck, BlockingDecreasesWithCapacity) {
  double prev = 1.0;
  for (int k : {1, 2, 4, 8, 16, 32}) {
    const auto m = mmck(1, k, 0.9, 1.0);
    EXPECT_LT(m.blocking_probability, prev);
    prev = m.blocking_probability;
  }
}

TEST(Mmck, SojournGrowsWithCapacity) {
  double prev = 0.0;
  for (int k : {1, 2, 4, 8, 16}) {
    const auto m = mmck(1, k, 0.9, 1.0);
    EXPECT_GT(m.mean_sojourn, prev);
    prev = m.mean_sojourn;
  }
}

TEST(Mmck, StableAboveSaturation) {
  // Finite systems have a steady state even at rho > 1.
  const auto m = mmck(1, 10, 3.0, 1.0);
  EXPECT_GT(m.blocking_probability, 0.6);
  EXPECT_NEAR(m.throughput, 1.0, 0.01);  // server nearly always busy
  EXPECT_NEAR(m.utilization, 1.0, 0.01);
  EXPECT_TRUE(std::isfinite(m.mean_sojourn));
}

TEST(Mmck, LittleLawOnAcceptedStream) {
  const auto m = mmck(3, 12, 2.5, 1.0);
  EXPECT_NEAR(m.mean_in_system, m.throughput * m.mean_sojourn, 1e-9);
  EXPECT_NEAR(m.mean_queue_len, m.throughput * m.mean_wait, 1e-9);
}

TEST(Mmck, ZeroArrivals) {
  const auto m = mmck(2, 5, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(m.blocking_probability, 0.0);
  EXPECT_DOUBLE_EQ(m.throughput, 0.0);
}

TEST(Mmck, Validation) {
  EXPECT_THROW(mmck(0, 1, 1.0, 1.0), Error);
  EXPECT_THROW(mmck(2, 1, 1.0, 1.0), Error);  // capacity < servers
  EXPECT_THROW(mmck(1, 1, -1.0, 1.0), Error);
  EXPECT_THROW(mmck(1, 1, 1.0, 0.0), Error);
}

TEST(SmallestCapacityFor, FindsTradeoffPoint) {
  // rho = 0.9: smallest K with sojourn <= 5 and blocking <= 4.5% is K = 11
  // (K = 10 blocks 5.1%, K = 11 blocks 4.4% at sojourn 4.97).
  const int k = smallest_capacity_for(1, 0.9, 1.0, 5.0, 0.045);
  ASSERT_EQ(k, 11);
  const auto at_k = mmck(1, k, 0.9, 1.0);
  EXPECT_LE(at_k.mean_sojourn, 5.0);
  EXPECT_LE(at_k.blocking_probability, 0.045);
  const auto below = mmck(1, k - 1, 0.9, 1.0);
  EXPECT_GT(below.blocking_probability, 0.045);  // k is minimal
}

TEST(SmallestCapacityFor, DelayBoundCanBeTheBlocker) {
  // sojourn <= 4 and blocking <= 5% cannot coexist at rho 0.9: by K = 9
  // the sojourn passes 4 while blocking is still 5.9%.
  EXPECT_EQ(smallest_capacity_for(1, 0.9, 1.0, 4.0, 0.05), -1);
}

TEST(SmallestCapacityFor, ImpossibleCombinationReturnsMinusOne) {
  // Demanding near-zero blocking AND tiny delay at rho 0.95 is impossible.
  EXPECT_EQ(smallest_capacity_for(1, 0.95, 1.0, 2.0, 1e-6, 1000), -1);
}

}  // namespace
}  // namespace cpm::queueing
