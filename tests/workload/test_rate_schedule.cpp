#include "cpm/workload/rate_schedule.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cpm/common/error.hpp"

namespace cpm::workload {
namespace {

TEST(RateSchedule, ConstantIsConstant) {
  const auto s = RateSchedule::constant(units::per_second(3.0));
  for (double t : {0.0, 0.5, 10.0, 123.4}) EXPECT_DOUBLE_EQ(s.rate_at(t).value(), 3.0);
  EXPECT_DOUBLE_EQ(s.max_rate().value(), 3.0);
  EXPECT_DOUBLE_EQ(s.mean_rate().value(), 3.0);
}

TEST(RateSchedule, SlotLookup) {
  const RateSchedule s({1.0, 2.0, 4.0}, 3.0);
  EXPECT_DOUBLE_EQ(s.rate_at(0.5).value(), 1.0);
  EXPECT_DOUBLE_EQ(s.rate_at(1.5).value(), 2.0);
  EXPECT_DOUBLE_EQ(s.rate_at(2.5).value(), 4.0);
  // Periodic continuation beyond the horizon.
  EXPECT_DOUBLE_EQ(s.rate_at(3.5).value(), 1.0);
  EXPECT_DOUBLE_EQ(s.rate_at(7.5).value(), 2.0);
  EXPECT_DOUBLE_EQ(s.max_rate().value(), 4.0);
  EXPECT_NEAR(s.mean_rate().value(), 7.0 / 3.0, 1e-12);
}

TEST(RateSchedule, ExpectedArrivalsIntegratesSlots) {
  const RateSchedule s({1.0, 3.0}, 2.0);
  EXPECT_NEAR(s.expected_arrivals(0.0, 2.0), 4.0, 1e-9);
  EXPECT_NEAR(s.expected_arrivals(0.5, 1.5), 0.5 + 1.5, 1e-9);
  EXPECT_NEAR(s.expected_arrivals(0.0, 4.0), 8.0, 1e-9);  // one full period x2
}

TEST(RateSchedule, DiurnalPeaksAtPeakTime) {
  const auto s = RateSchedule::diurnal(units::per_second(2.0), units::per_second(10.0), 24.0, /*peak_time=*/14.0);
  EXPECT_NEAR(s.rate_at(14.0).value(), 10.0, 0.2);  // near the peak value
  EXPECT_NEAR(s.rate_at(2.0).value(), 2.0, 0.2);    // trough 12h away
  EXPECT_LE(s.max_rate().value(), 10.0 + 1e-9);
  for (double t = 0.0; t < 24.0; t += 0.7) {
    EXPECT_GE(s.rate_at(t).value(), 2.0 - 1e-9);
    EXPECT_LE(s.rate_at(t).value(), 10.0 + 1e-9);
  }
}

TEST(RateSchedule, FlashCrowdWindow) {
  const auto s = RateSchedule::flash_crowd(units::per_second(1.0), units::per_second(9.0), 40.0, 20.0, 100.0, 100);
  EXPECT_DOUBLE_EQ(s.rate_at(10.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(s.rate_at(50.0).value(), 9.0);
  EXPECT_DOUBLE_EQ(s.rate_at(70.0).value(), 1.0);
  EXPECT_NEAR(s.mean_rate().value(), 0.8 * 1.0 + 0.2 * 9.0, 0.2);
}

TEST(RateSchedule, Mmpp2AlternatesBetweenLevels) {
  const auto s = RateSchedule::mmpp2(units::per_second(1.0), units::per_second(8.0), 10.0, 5.0, 200.0, 42, 400);
  bool saw_low = false, saw_high = false;
  for (double r : s.slot_rates()) {
    if (r == 1.0) saw_low = true;
    if (r == 8.0) saw_high = true;
    EXPECT_TRUE(r == 1.0 || r == 8.0);
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
  // Deterministic in the seed.
  const auto again = RateSchedule::mmpp2(units::per_second(1.0), units::per_second(8.0), 10.0, 5.0, 200.0, 42, 400);
  EXPECT_EQ(s.slot_rates(), again.slot_rates());
}

TEST(RateSchedule, ScaledMultipliesRates) {
  const RateSchedule s({1.0, 2.0}, 2.0);
  const auto doubled = s.scaled(2.0);
  EXPECT_DOUBLE_EQ(doubled.rate_at(0.5).value(), 2.0);
  EXPECT_DOUBLE_EQ(doubled.rate_at(1.5).value(), 4.0);
}

TEST(RateSchedule, ThinningMatchesExpectedCounts) {
  // Count arrivals per slot over many periods; each slot's count should
  // match its rate integral.
  const RateSchedule s({2.0, 8.0}, 2.0);
  Rng rng(9);
  const double horizon = 4000.0;
  double t = 0.0;
  double in_low = 0.0, in_high = 0.0;
  while (true) {
    t = s.next_arrival(t, rng);
    if (t >= horizon) break;
    if (std::fmod(t, 2.0) < 1.0) in_low += 1.0; else in_high += 1.0;
  }
  // Expected: 2000 slots of each kind x rate x width(1).
  EXPECT_NEAR(in_low, 2.0 * 2000.0, 0.05 * 4000.0);
  EXPECT_NEAR(in_high, 8.0 * 2000.0, 0.05 * 16000.0);
}

TEST(RateSchedule, ThinningTimesStrictlyAdvance) {
  const auto s = RateSchedule::diurnal(units::per_second(1.0), units::per_second(5.0), 10.0);
  Rng rng(4);
  double t = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double next = s.next_arrival(t, rng);
    ASSERT_GT(next, t);
    t = next;
  }
}

TEST(RateSchedule, Validation) {
  EXPECT_THROW(RateSchedule({}, 1.0), Error);
  EXPECT_THROW(RateSchedule({1.0}, 0.0), Error);
  EXPECT_THROW(RateSchedule({-1.0}, 1.0), Error);
  EXPECT_THROW(RateSchedule({0.0}, 1.0), Error);  // all-zero has no arrivals
  EXPECT_THROW(RateSchedule::diurnal(units::per_second(5.0), units::per_second(2.0), 24.0), Error);
  EXPECT_THROW(RateSchedule::flash_crowd(units::per_second(1.0), units::per_second(2.0), 90.0, 20.0, 100.0), Error);
  const RateSchedule s({1.0}, 1.0);
  EXPECT_THROW(static_cast<void>(s.rate_at(-1.0)), Error);
  EXPECT_THROW(s.scaled(0.0), Error);
}

}  // namespace
}  // namespace cpm::workload
