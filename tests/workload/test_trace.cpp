#include "cpm/workload/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cpm/common/error.hpp"
#include "cpm/queueing/basic.hpp"
#include "cpm/sim/simulator.hpp"

namespace cpm::workload {
namespace {

TEST(ArrivalTrace, FromTimestampsSorts) {
  const auto t = ArrivalTrace::from_timestamps({3.0, 1.0, 2.0});
  EXPECT_EQ(t.timestamps(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(ArrivalTrace, ParseCsvBasics) {
  const auto t = ArrivalTrace::parse_csv(
      "# a log\n"
      "timestamp\n"   // header tolerated
      "0.5\n"
      "  1.25  \n"
      "\n"
      "2.0\r\n");
  EXPECT_EQ(t.timestamps(), (std::vector<double>{0.5, 1.25, 2.0}));
}

TEST(ArrivalTrace, ParseCsvErrorsCarryLineNumbers) {
  try {
    ArrivalTrace::parse_csv("1.0\n2.0\noops\n");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
  EXPECT_THROW(ArrivalTrace::parse_csv("1.0\n-2.0\n"), Error);
  EXPECT_THROW(ArrivalTrace::parse_csv("1.0\n"), Error);  // one arrival
}

TEST(ArrivalTrace, PoissonStatsLookPoisson) {
  const auto t = ArrivalTrace::poisson(units::per_second(5.0), 2000.0, 7);
  const auto s = t.stats();
  EXPECT_NEAR(s.mean_rate.value(), 5.0, 0.25);
  EXPECT_NEAR(s.interarrival_scv, 1.0, 0.1);  // exponential gaps
  EXPECT_LT(s.peak_to_mean, 1.5);
  EXPECT_GT(s.count, 9000u);
}

TEST(ArrivalTrace, BurstyTraceHasHighScv) {
  // Alternating dense bursts and long silences.
  // 10 dense bursts separated by long silences: with the stats binning of
  // 100 slots, each burst concentrates in ~1 of every 10 slots.
  std::vector<double> times;
  double t = 0.0;
  for (int burst = 0; burst < 10; ++burst) {
    for (int i = 0; i < 50; ++i) times.push_back(t += 0.01);
    t += 50.0;
  }
  const auto trace = ArrivalTrace::from_timestamps(std::move(times));
  const auto s = trace.stats();
  EXPECT_GT(s.interarrival_scv, 5.0);
  EXPECT_GT(s.peak_to_mean, 3.0);
}

TEST(ArrivalTrace, RateScheduleIntegratesToCount) {
  const auto t = ArrivalTrace::poisson(units::per_second(3.0), 500.0, 9);
  const auto sched = t.to_rate_schedule(50);
  const double expected =
      sched.expected_arrivals(0.0, sched.horizon());
  EXPECT_NEAR(expected, static_cast<double>(t.stats().count), 1.0);
}

TEST(ArrivalTrace, TimeScaleAndShift) {
  const auto t = ArrivalTrace::from_timestamps({1.0, 2.0, 4.0});
  const auto fast = t.time_scaled(0.5);
  EXPECT_EQ(fast.timestamps(), (std::vector<double>{0.5, 1.0, 2.0}));
  const auto moved = t.shifted_to(10.0);
  EXPECT_EQ(moved.timestamps(), (std::vector<double>{10.0, 11.0, 13.0}));
  EXPECT_THROW(t.time_scaled(0.0), Error);
}

TEST(TraceReplay, SimulatorReplaysExactCount) {
  const auto trace = ArrivalTrace::poisson(units::per_second(0.5), 1000.0, 11);
  sim::SimConfig cfg;
  cfg.stations = {sim::SimStation{"s", 1, queueing::Discipline::kFcfs,
                                  units::watts(0.0), units::watts(0.0), 1.0}};
  sim::SimClass cls;
  cls.name = "replay";
  cls.route = {queueing::Visit{0, Distribution::exponential(0.2)}};
  cls.arrival_times = trace.timestamps();
  cfg.classes = {cls};
  cfg.warmup_time = 0.0;
  cfg.end_time = 1100.0;  // past the last arrival -> everything completes
  cfg.seed = 3;
  const auto r = sim::simulate(cfg);
  EXPECT_EQ(r.classes[0].completed, trace.stats().count);
}

TEST(TraceReplay, PoissonTraceMatchesPoissonTheory) {
  // Replaying a Poisson trace must reproduce M/M/1 behaviour.
  const auto trace = ArrivalTrace::poisson(units::per_second(0.5), 4000.0, 13);
  sim::SimConfig cfg;
  cfg.stations = {sim::SimStation{"s", 1, queueing::Discipline::kFcfs,
                                  units::watts(0.0), units::watts(0.0), 1.0}};
  sim::SimClass cls;
  cls.name = "replay";
  cls.route = {queueing::Visit{0, Distribution::exponential(1.0)}};
  cls.arrival_times = trace.timestamps();
  cfg.classes = {cls};
  cfg.warmup_time = 200.0;
  cfg.end_time = 4000.0;
  cfg.seed = 3;
  const auto r = sim::simulate(cfg);
  const double theory = queueing::mm1(0.5, 1.0).mean_sojourn;
  EXPECT_NEAR(r.classes[0].mean_e2e_delay.value(), theory, 0.15 * theory);
}

TEST(TraceReplay, ValidationRejectsUnsortedTrace) {
  sim::SimConfig cfg;
  cfg.stations = {sim::SimStation{"s", 1, queueing::Discipline::kFcfs,
                                  units::watts(0.0), units::watts(0.0), 1.0}};
  sim::SimClass cls;
  cls.name = "bad";
  cls.route = {queueing::Visit{0, Distribution::exponential(0.2)}};
  cls.arrival_times = {2.0, 1.0};
  cfg.classes = {cls};
  cfg.end_time = 10.0;
  EXPECT_THROW(sim::simulate(cfg), Error);
}

}  // namespace
}  // namespace cpm::workload
