// Differential verification: independent implementations must agree.
// check_reductions pins the general analytic code paths to the exact
// special cases they must collapse to; cross_validate pits the whole
// analytic stack against the discrete-event simulator on the paper's
// enterprise scenario.
#include <gtest/gtest.h>

#include "cpm/check/differential.hpp"
#include "cpm/core/cpm.hpp"

namespace cpm {
namespace {

TEST(Reductions, AllExactSpecialCasesCollapse) {
  const auto report = check::check_reductions();
  EXPECT_TRUE(report.all_passed()) << "worst " << report.worst_violation();
  for (const char* id :
       {"reduction-ggc-mmc", "reduction-gg1-mg1", "reduction-priority-fcfs",
        "reduction-ps-insensitivity"}) {
    const auto* c = report.find(id);
    ASSERT_NE(c, nullptr) << id;
    EXPECT_TRUE(c->passed) << id << " worst " << c->worst_violation;
    // These are arithmetic identities, not approximations: residuals must
    // sit at roundoff, far below even the strict default tolerance.
    EXPECT_LT(c->worst_violation, 1e-12) << id;
  }
}

TEST(CrossValidate, AnalyticAgreesWithSimulationOnEnterpriseModel) {
  const auto model = core::make_enterprise_model(0.7);
  check::CrossValidateOptions options;
  options.sim.replications = 5;
  const auto report =
      check::cross_validate(model, model.max_frequencies(), options);
  EXPECT_TRUE(report.all_passed()) << "worst " << report.worst_violation();
  // The differential legs and the in-run sim oracles all reported.
  for (const char* id : {"diff-delay", "diff-power", "diff-utilization",
                         "little-law", "flow-conservation",
                         "energy-balance-sim"})
    ASSERT_NE(report.find(id), nullptr) << id;
}

TEST(CrossValidate, HoldsAcrossDisciplines) {
  check::CrossValidateOptions options;
  options.sim.replications = 3;
  options.sim.end_time = 400.0;
  for (const auto d :
       {queueing::Discipline::kFcfs, queueing::Discipline::kPreemptiveResume,
        queueing::Discipline::kProcessorSharing}) {
    const auto model = core::make_enterprise_model(0.6, d);
    const auto report =
        check::cross_validate(model, model.max_frequencies(), options);
    EXPECT_TRUE(report.all_passed())
        << "discipline " << static_cast<int>(d) << " worst "
        << report.worst_violation();
  }
}

TEST(CrossValidate, RejectsUnstableOperatingPoint) {
  const auto model = core::make_enterprise_model(0.7).with_rate_scale(5.0);
  EXPECT_THROW(check::cross_validate(model, model.max_frequencies()), Error);
}

TEST(CrossValidate, MergedReportsKeepWorstViolationPerInvariant) {
  check::Report a;
  a.add({"x", true, 0.01, 0.1, "site-a"});
  check::Report b;
  b.add({"x", false, 0.5, 0.1, "site-b"});
  b.add({"y", true, 0.0, 1.0, ""});
  a.merge(b);
  ASSERT_EQ(a.checks().size(), 2u);
  const auto* x = a.find("x");
  ASSERT_NE(x, nullptr);
  EXPECT_FALSE(x->passed);  // one failing subject fails the aggregate
  EXPECT_DOUBLE_EQ(x->worst_violation, 0.5);
  EXPECT_EQ(x->detail, "site-b");
  EXPECT_FALSE(a.all_passed());
  EXPECT_DOUBLE_EQ(a.worst_violation(), 0.5);
}

}  // namespace
}  // namespace cpm
