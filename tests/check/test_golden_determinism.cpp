// Golden-value determinism: a fixed-seed simulation and the deterministic
// optimisers must reproduce these stored metrics BIT FOR BIT, forever.
// Any divergence means the change altered numerics (event ordering, RNG
// consumption, accumulation order, solver iteration) — which may be fine,
// but must be a conscious decision: regenerate the literals and say so in
// the commit. The values were produced by this very code; x86-64 GCC
// Release is the reference environment (no -ffast-math anywhere).
#include <gtest/gtest.h>

#include "cpm/core/cpm.hpp"

namespace cpm {
namespace {

TEST(GoldenDeterminism, FixedSeedSimulationIsBitForBitStable) {
  const auto model = core::make_enterprise_model(0.7);
  auto cfg = model.to_sim_config(model.max_frequencies(), 50.0, 550.0,
                                 20110516);
  cfg.audit = true;  // the audit hooks must not perturb the statistics
  const auto r = sim::simulate(cfg);

  EXPECT_EQ(r.events_fired, 50304u);
  ASSERT_EQ(r.classes.size(), 3u);

  EXPECT_EQ(r.classes[0].completed, 2343u);
  EXPECT_EQ(r.classes[1].completed, 3352u);
  EXPECT_EQ(r.classes[2].completed, 5753u);
  EXPECT_EQ(r.classes[0].arrived, 2343u);
  EXPECT_EQ(r.classes[1].arrived, 3354u);
  EXPECT_EQ(r.classes[2].arrived, 5756u);

  EXPECT_EQ(r.classes[0].mean_e2e_delay.value(), 0.098099850875314462);
  EXPECT_EQ(r.classes[1].mean_e2e_delay.value(), 0.13381440243186757);
  EXPECT_EQ(r.classes[2].mean_e2e_delay.value(), 0.23640063427960029);
  EXPECT_EQ(r.classes[0].mean_e2e_energy.value(), 5.5320839639529398);
  EXPECT_EQ(r.classes[1].mean_e2e_energy.value(), 7.4958250699073474);
  EXPECT_EQ(r.classes[2].mean_e2e_energy.value(), 8.6299522348431648);

  EXPECT_EQ(r.mean_e2e_delay.value(), 0.17796460804442332);
  EXPECT_EQ(r.cluster_avg_power.value(), 775.62392622996094);
}

TEST(GoldenDeterminism, ContinuousDelayOptimizerIsStable) {
  const auto model = core::make_enterprise_model(0.6);
  EXPECT_EQ(model.power_at(model.max_frequencies()).value(), 751.47540983606552);

  const auto pd = core::minimize_delay_with_power_budget(model, units::watts(700.0));
  ASSERT_TRUE(pd.feasible);
  EXPECT_EQ(pd.mean_delay.value(), 0.1996453567499237);
  EXPECT_EQ(pd.power.value(), 700.04326444746607);
  ASSERT_EQ(pd.frequencies.size(), 3u);
  EXPECT_EQ(pd.frequencies[0], 0.59999999999999998);
  EXPECT_EQ(pd.frequencies[1], 0.77646192176944495);
  EXPECT_EQ(pd.frequencies[2], 0.97941875996740291);
}

TEST(GoldenDeterminism, DiscreteEnergyOptimizerIsStable) {
  const auto model = core::make_enterprise_model(0.6);
  const auto pe = core::minimize_power_with_delay_bound_discrete(model, units::seconds(0.5), 7);
  ASSERT_TRUE(pe.feasible);
  EXPECT_EQ(pe.mean_delay.value(), 0.4207537697830373);
  EXPECT_EQ(pe.power.value(), 665.19781420765025);
  ASSERT_EQ(pe.frequencies.size(), 3u);
  EXPECT_EQ(pe.frequencies[0], 0.59999999999999998);
  EXPECT_EQ(pe.frequencies[1], 0.59999999999999998);
  EXPECT_EQ(pe.frequencies[2], 0.73333333333333328);
}

TEST(GoldenDeterminism, CostOptimizerIsStable) {
  const auto model = core::make_enterprise_model(0.6);
  const auto pc = core::minimize_cost_for_slas(model);
  ASSERT_TRUE(pc.feasible);
  EXPECT_EQ(pc.total_cost, 5.0);
  EXPECT_EQ(pc.servers, (std::vector<int>{1, 1, 1}));
  EXPECT_EQ(pc.nodes_explored, 139);
}

}  // namespace
}  // namespace cpm
