// The certifier under Monte-Carlo attack: over hundreds of generated
// models with random uncertainty boxes, no PROVED box may contain a
// concretely-violating point, every REFUTED witness must re-violate when
// evaluated by the ordinary analyzer, and degenerate boxes must both be
// fully decided and agree with cpm::lint rule for rule.
#include <gtest/gtest.h>

#include <string>

#include "cpm/check/certify_oracle.hpp"
#include "cpm/check/generator.hpp"
#include "cpm/common/rng.hpp"
#include "cpm/core/cluster_model.hpp"

namespace cpm::check {
namespace {

std::string details(const Report& report) {
  std::string out;
  for (const auto& c : report.checks())
    if (!c.passed) out += c.invariant + ": " + c.detail + "\n";
  return out;
}

TEST(CertifyOracle, SoundOnTheEnterpriseModel) {
  const auto model = core::make_enterprise_model(0.7);
  Rng rng(20110516);
  const certify::BoxSpec box = random_box(model, rng);
  const Report report = check_certify_soundness(model, box, rng);
  EXPECT_TRUE(report.all_passed()) << details(report);
}

TEST(CertifyOracle, RefutedWitnessIsConcrete) {
  // Force a refutation and check the oracle validates (not just skips)
  // the witness branch.
  const auto model = core::make_enterprise_model(0.7);
  certify::BoxSpec box = certify::default_box(model);
  box.rates[0] = core::Interval{model.classes()[0].rate.value(),
                                model.classes()[0].rate.value() * 100.0};
  Rng rng(7);
  const Report report = check_certify_soundness(model, box, rng);
  EXPECT_TRUE(report.all_passed()) << details(report);
  const certify::CertifyReport cert = certify::certify_model(model, box);
  EXPECT_GT(cert.count(certify::Verdict::kRefuted), 0u);
}

TEST(CertifyOracle, SweepTwoHundredRandomModels) {
  // The acceptance gate: 200 generated models x random boxes, plus the
  // degenerate-box/lint parity invariants, all clean.
  CertifyOracleOptions options;
  options.samples = 16;
  const Report report = sweep_certify_random_models(20110516, 200, options);
  EXPECT_TRUE(report.all_passed()) << details(report);
  // merge() coalesces same-named invariants across models: the sweep must
  // surface exactly the four certifier invariants.
  EXPECT_EQ(report.checks().size(), 4u);
  bool saw_sound = false;
  bool saw_parity = false;
  for (const auto& c : report.checks()) {
    if (c.invariant == "certify-proved-sound") saw_sound = true;
    if (c.invariant == "certify-degenerate-matches-lint") saw_parity = true;
  }
  EXPECT_TRUE(saw_sound);
  EXPECT_TRUE(saw_parity);
}

TEST(CertifyOracle, SweepIsDeterministic) {
  CertifyOracleOptions options;
  options.samples = 4;
  const Report a = sweep_certify_random_models(42, 10, options);
  const Report b = sweep_certify_random_models(42, 10, options);
  ASSERT_EQ(a.checks().size(), b.checks().size());
  for (std::size_t i = 0; i < a.checks().size(); ++i) {
    EXPECT_EQ(a.checks()[i].passed, b.checks()[i].passed);
    EXPECT_EQ(a.checks()[i].detail, b.checks()[i].detail);
  }
}

}  // namespace
}  // namespace cpm::check
