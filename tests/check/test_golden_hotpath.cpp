// Golden-value pin for the simulator hot path, companion to
// test_golden_determinism.cpp. That file covers the plain FCFS/priority
// enterprise model; this one locks the REST of the event paths — blocking
// admission control, preemptive-resume victim selection, processor
// sharing, closed interactive classes and mid-service DVFS retuning — so
// a hot-path optimisation (event representation, heap arity, allocation
// strategy) provably changes no simulation result bit-for-bit. The
// literals were produced by the pre-overhaul closure-based simulator and
// reproduced exactly by the typed-event/arena implementation; x86-64 GCC
// Release is the reference environment (no -ffast-math anywhere).
#include <gtest/gtest.h>

#include "cpm/common/distribution.hpp"
#include "cpm/sim/replication.hpp"
#include "cpm/sim/simulator.hpp"

namespace cpm {
namespace {

sim::SimConfig mixed_config() {
  sim::SimConfig cfg;
  cfg.stations.push_back(sim::SimStation{
      "edge", 2, queueing::Discipline::kPreemptiveResume, units::watts(50.0),
      units::watts(100.0), 1.0, 5});
  cfg.stations.push_back(sim::SimStation{
      "app", 3, queueing::Discipline::kProcessorSharing, units::watts(60.0),
      units::watts(120.0), 1.0, -1});
  cfg.stations.push_back(sim::SimStation{
      "db", 2, queueing::Discipline::kNonPreemptivePriority, units::watts(70.0),
      units::watts(140.0), 1.0, -1});

  sim::SimClass gold;
  gold.name = "gold";
  gold.rate = units::per_second(2.0);
  gold.route = {queueing::Visit{0, Distribution::hyper_exp2(0.15, 4.0)},
                queueing::Visit{1, Distribution::erlang(2, 0.2)},
                queueing::Visit{2, Distribution::exponential(0.1)}};
  cfg.classes.push_back(gold);

  sim::SimClass silver;
  silver.name = "silver";
  silver.rate = units::per_second(3.0);
  silver.route = {queueing::Visit{0, Distribution::exponential(0.12)},
                  queueing::Visit{1, Distribution::deterministic(0.18)}};
  cfg.classes.push_back(silver);

  sim::SimClass batch;  // closed interactive class
  batch.name = "batch";
  batch.population = 5;
  batch.think_time = Distribution::exponential(2.0);
  batch.route = {queueing::Visit{1, Distribution::exponential(0.3)},
                 queueing::Visit{2, Distribution::erlang(3, 0.25)}};
  cfg.classes.push_back(batch);

  cfg.warmup_time = 50.0;
  cfg.end_time = 450.0;
  cfg.seed = 424242;
  cfg.audit = true;

  // DVFS control hook: alternate the edge/db operating points every period
  // so the mid-service rescale + energy segmentation paths run.
  cfg.control_period = 25.0;
  cfg.control = [](const sim::ControlSnapshot& snap) {
    std::vector<sim::TierSetting> out(3);
    const bool high = (static_cast<int>(snap.time / 25.0) % 2) == 1;
    out[0] = sim::TierSetting{high ? 1.25 : 0.9, units::watts(high ? 130.0 : 90.0)};
    out[1] = sim::TierSetting{high ? 1.1 : 1.0, units::watts(120.0)};
    out[2] = sim::TierSetting{1.0, units::watts(high ? 150.0 : 140.0)};
    return out;
  };
  return cfg;
}

TEST(GoldenHotPath, MixedDisciplineSimulationIsBitForBitStable) {
  const auto r = sim::simulate(mixed_config());

  EXPECT_EQ(r.events_fired, 12585u);
  ASSERT_EQ(r.classes.size(), 3u);

  EXPECT_EQ(r.classes[0].completed, 794u);
  EXPECT_EQ(r.classes[0].blocked, 10u);
  EXPECT_EQ(r.classes[0].arrived, 806u);
  EXPECT_EQ(r.classes[0].in_system_at_end, 2u);
  EXPECT_EQ(r.classes[1].completed, 1146u);
  EXPECT_EQ(r.classes[1].blocked, 11u);
  EXPECT_EQ(r.classes[1].arrived, 1158u);
  EXPECT_EQ(r.classes[1].in_system_at_end, 1u);
  EXPECT_EQ(r.classes[2].completed, 782u);
  EXPECT_EQ(r.classes[2].blocked, 0u);
  EXPECT_EQ(r.classes[2].arrived, 783u);
  EXPECT_EQ(r.classes[2].in_system_at_end, 1u);

  EXPECT_EQ(r.classes[0].mean_e2e_delay.value(), 0.48179082680434859);
  EXPECT_EQ(r.classes[0].p95_e2e_delay.value(), 1.0684034690299493);
  EXPECT_EQ(r.classes[0].mean_e2e_energy.value(), 53.786146506672836);
  EXPECT_EQ(r.classes[1].mean_e2e_delay.value(), 0.33177744591399688);
  EXPECT_EQ(r.classes[1].p95_e2e_delay.value(), 0.6838738237461478);
  EXPECT_EQ(r.classes[1].mean_e2e_energy.value(), 32.461560642482993);
  EXPECT_EQ(r.classes[2].mean_e2e_delay.value(), 0.57238508368685226);
  EXPECT_EQ(r.classes[2].p95_e2e_delay.value(), 1.2472367262555273);
  EXPECT_EQ(r.classes[2].mean_e2e_energy.value(), 70.497961004900091);

  EXPECT_EQ(r.mean_e2e_delay.value(), 0.44254878935420328);
  EXPECT_EQ(r.cluster_avg_power.value(), 758.22434806940191);

  ASSERT_EQ(r.stations.size(), 3u);
  EXPECT_EQ(r.stations[0].utilization, 0.30595130487755251);
  EXPECT_EQ(r.stations[0].mean_queue_len, 0.088168114910950945);
  EXPECT_EQ(r.stations[0].avg_power.value(), 165.51901254264305);
  EXPECT_EQ(r.stations[1].utilization, 0.47881625476665363);
  EXPECT_EQ(r.stations[1].mean_queue_len, 0.0);
  EXPECT_EQ(r.stations[1].avg_power.value(), 352.37385171599544);
  EXPECT_EQ(r.stations[2].utilization, 0.34553106738524408);
  EXPECT_EQ(r.stations[2].mean_queue_len, 0.045911335976984768);
  EXPECT_EQ(r.stations[2].avg_power.value(), 240.33148381076344);
}

TEST(GoldenHotPath, ReplicatedAggregateIsThreadCountInvariant) {
  // Results land in slots addressed by replication index, so the pool's
  // nondeterministic schedule must not change any aggregate.
  auto base = mixed_config();
  base.audit = false;
  sim::ReplicationOptions opt;
  opt.replications = 4;
  opt.threads = 2;
  const auto two = sim::replicate(base, opt);
  EXPECT_EQ(two.mean_e2e_delay.mean, 0.44177662426316155);
  EXPECT_EQ(two.mean_e2e_delay.half_width, 0.014415335907775603);
  EXPECT_EQ(two.cluster_avg_power.mean, 755.51247725358996);
  EXPECT_EQ(two.total_events, 50614u);
  EXPECT_EQ(two.threads_used, 2u);

  opt.threads = 1;
  const auto one = sim::replicate(base, opt);
  EXPECT_EQ(one.mean_e2e_delay.mean, two.mean_e2e_delay.mean);
  EXPECT_EQ(one.mean_e2e_delay.half_width, two.mean_e2e_delay.half_width);
  EXPECT_EQ(one.cluster_avg_power.mean, two.cluster_avg_power.mean);
  EXPECT_EQ(one.threads_used, 1u);
}

}  // namespace
}  // namespace cpm
