// ModelGenerator: deterministic streams of random-but-stable models whose
// shape respects the configured envelopes. The 200-model sweep at the end
// is the fuzz gate the CI job reruns through `cpmctl check --random`.
#include <gtest/gtest.h>

#include <algorithm>

#include "cpm/check/differential.hpp"
#include "cpm/check/generator.hpp"
#include "cpm/common/error.hpp"
#include "cpm/core/model_io.hpp"

namespace cpm {
namespace {

TEST(ModelGenerator, DeterministicInSeed) {
  check::ModelGenerator a(42);
  check::ModelGenerator b(42);
  for (int i = 0; i < 5; ++i) {
    const auto ma = a.next();
    const auto mb = b.next();
    EXPECT_EQ(core::model_to_json(ma).dump(), core::model_to_json(mb).dump())
        << "model " << i;
  }
  EXPECT_EQ(a.generated(), 5u);

  // A different seed must give a different stream (overwhelmingly likely).
  check::ModelGenerator c(43);
  EXPECT_NE(core::model_to_json(check::ModelGenerator(42).next()).dump(),
            core::model_to_json(c.next()).dump());
}

TEST(ModelGenerator, MatchesFreeFunctionDrawForDraw) {
  Rng rng(77);
  const auto direct = check::random_model(rng);
  check::ModelGenerator gen(77);
  EXPECT_EQ(core::model_to_json(direct).dump(),
            core::model_to_json(gen.next()).dump());
}

TEST(ModelGenerator, RespectsEnvelopes) {
  check::GeneratorOptions opt;
  opt.min_tiers = 2;
  opt.max_tiers = 4;
  opt.min_classes = 2;
  opt.max_classes = 2;
  opt.min_servers = 2;
  opt.max_servers = 5;
  opt.disciplines = {queueing::Discipline::kFcfs};
  opt.util_cap = 0.5;
  check::ModelGenerator gen(7, opt);
  for (int i = 0; i < 50; ++i) {
    const auto m = gen.next();
    EXPECT_GE(m.num_tiers(), 2u);
    EXPECT_LE(m.num_tiers(), 4u);
    EXPECT_EQ(m.num_classes(), 2u);
    for (const auto& t : m.tiers()) {
      EXPECT_GE(t.servers, 2);
      EXPECT_LE(t.servers, 5);
      EXPECT_EQ(t.discipline, queueing::Discipline::kFcfs);
    }
    // Rescaling pins the bottleneck exactly at the cap.
    const auto utils = queueing::network_utilizations(
        m.network_stations(), m.network_classes(m.max_frequencies()));
    EXPECT_NEAR(*std::max_element(utils.begin(), utils.end()), 0.5, 1e-12);
  }
}

TEST(ModelGenerator, EveryGeneratedModelIsStable) {
  check::ModelGenerator gen(2026);
  for (int i = 0; i < 100; ++i) {
    const auto m = gen.next();
    EXPECT_TRUE(m.stable_at(m.max_frequencies())) << "model " << i;
  }
}

TEST(GeneratorOptions, NonsenseEnvelopesAreRejected) {
  const auto bad = [](auto mutate) {
    check::GeneratorOptions opt;
    mutate(opt);
    return opt;
  };
  EXPECT_THROW(check::validate_options(bad([](auto& o) { o.min_tiers = 0; })),
               Error);
  EXPECT_THROW(
      check::validate_options(bad([](auto& o) { o.max_tiers = o.min_tiers - 1; })),
      Error);
  EXPECT_THROW(
      check::validate_options(bad([](auto& o) { o.disciplines.clear(); })),
      Error);
  EXPECT_THROW(check::validate_options(bad([](auto& o) { o.util_cap = 1.0; })),
               Error);
  EXPECT_THROW(
      check::validate_options(
          bad([](auto& o) { o.min_rate = units::per_second(-1.0); })),
      Error);
  EXPECT_THROW(
      check::validate_options(bad([](auto& o) { o.max_demand_mean = 0.005; })),
      Error);
  EXPECT_NO_THROW(check::validate_options(check::GeneratorOptions{}));
}

// The acceptance gate: the analytic oracle battery over >= 200 generated
// stable models, with the simulation differential sampled along the way.
TEST(RandomModelSweep, TwoHundredModelsSatisfyEveryInvariant) {
  check::CrossValidateOptions options;
  options.sim.replications = 3;
  options.sim.end_time = 300.0;
  const auto report =
      check::sweep_random_models(20110516, 200, {}, /*sim_every=*/40, options);
  EXPECT_TRUE(report.all_passed()) << "worst " << report.worst_violation();
  ASSERT_NE(report.find("utilization-law"), nullptr);
  ASSERT_NE(report.find("diff-delay"), nullptr);  // sim leg actually ran
}

}  // namespace
}  // namespace cpm
