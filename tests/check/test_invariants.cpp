// The invariant oracles must (a) hold on every healthy operating point of
// the paper's scenarios — the E1 load sweep across all four disciplines —
// and (b) fail loudly when fed a deliberately corrupted model or
// evaluation. A silent oracle is worse than none: the negative tests here
// prove each law actually has teeth.
#include <gtest/gtest.h>

#include "cpm/check/invariants.hpp"
#include "cpm/core/cpm.hpp"

namespace cpm {
namespace {

using core::ClusterModel;
using core::make_enterprise_model;
using queueing::Discipline;

// ---- positive: the E1 sweep -----------------------------------------------

class AnalyticOracleSweep : public ::testing::TestWithParam<double> {};

TEST_P(AnalyticOracleSweep, HoldOnEnterpriseModelAcrossDisciplines) {
  for (const Discipline d :
       {Discipline::kFcfs, Discipline::kNonPreemptivePriority,
        Discipline::kPreemptiveResume, Discipline::kProcessorSharing}) {
    const auto model = make_enterprise_model(GetParam(), d);
    const auto report = check::check_analytic(model, model.max_frequencies());
    EXPECT_TRUE(report.all_passed())
        << "load " << GetParam() << " discipline " << static_cast<int>(d)
        << ": worst violation " << report.worst_violation();
  }
}

TEST_P(AnalyticOracleSweep, HoldAtReducedFrequencies) {
  // The optimisers (E3-E5) pick interior DVFS points; the laws must hold
  // there too, not only at f_max.
  const auto model = make_enterprise_model(GetParam());
  auto f = model.max_frequencies();
  const auto f_min = model.min_stable_frequencies(0.05);
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = 0.5 * (f[i] + f_min[i]);
  if (!model.stable_at(f)) return;
  const auto report = check::check_analytic(model, f);
  EXPECT_TRUE(report.all_passed())
      << "load " << GetParam() << ": worst " << report.worst_violation();
}

INSTANTIATE_TEST_SUITE_P(E1LoadSweep, AnalyticOracleSweep,
                         ::testing::Values(0.3, 0.5, 0.7, 0.8, 0.9, 0.95));

TEST(AnalyticOracles, ReportCoversEveryLaw) {
  const auto model = make_enterprise_model(0.7);
  const auto report = check::check_analytic(model, model.max_frequencies());
  for (const char* id : {"utilization-law", "conservation-law",
                         "work-conservation", "energy-balance"}) {
    const auto* c = report.find(id);
    ASSERT_NE(c, nullptr) << id;
    EXPECT_TRUE(c->passed) << id;
    EXPECT_LT(c->worst_violation, c->tolerance) << id;
  }
}

TEST(AnalyticOracles, ThrowOnUnstableModel) {
  const auto model = make_enterprise_model(0.7).with_rate_scale(10.0);
  EXPECT_THROW(check::check_analytic(model, model.max_frequencies()), Error);
}

// ---- negative: corrupted inputs must be detected ---------------------------

TEST(AnalyticOracleDetection, UtilizationLawCatchesMutatedDemand) {
  const auto model = make_enterprise_model(0.7);
  const auto f = model.max_frequencies();
  const auto ev = model.evaluate(f);
  ASSERT_TRUE(ev.stable);

  // Tamper with one service demand AFTER evaluating: the oracle recomputes
  // offered load from the (now lying) model and must spot the mismatch.
  auto tiers = model.tiers();
  auto classes = model.classes();
  classes[0].route[0].base_service = Distribution::from_mean_scv(
      classes[0].route[0].base_service.mean() * 1.10,
      classes[0].route[0].base_service.scv());
  const ClusterModel tampered(std::move(tiers), std::move(classes));

  EXPECT_FALSE(check::check_utilization_law(tampered, f, ev).passed);
  EXPECT_TRUE(check::check_utilization_law(model, f, ev).passed);
}

TEST(AnalyticOracleDetection, ConservationLawCatchesInflatedWait) {
  const auto model = make_enterprise_model(0.7);
  const auto f = model.max_frequencies();
  auto ev = model.evaluate(f);
  ASSERT_TRUE(ev.stable);
  ASSERT_TRUE(check::check_conservation_law(model, f, ev).passed);

  // Inflate one class's wait at the single-server db tier (index 2): the
  // rho-weighted aggregate no longer telescopes to rho W0 / (1 - rho).
  ev.net.station_wait[2][0] *= 1.05;
  EXPECT_FALSE(check::check_conservation_law(model, f, ev).passed);
}

TEST(AnalyticOracleDetection, WorkConservationCatchesTamperedEvaluation) {
  const auto model = make_enterprise_model(0.7);
  const auto f = model.max_frequencies();
  const auto fcfs = model.with_discipline(Discipline::kFcfs).evaluate(f);
  auto prio =
      model.with_discipline(Discipline::kNonPreemptivePriority).evaluate(f);
  ASSERT_TRUE(fcfs.stable && prio.stable);
  ASSERT_TRUE(check::check_work_conservation(model, fcfs, prio).passed);

  // A scheduler that destroyed work (cut the high-priority wait without
  // anyone paying for it) would violate the identity.
  prio.net.station_wait[2][0] *= 0.5;
  EXPECT_FALSE(check::check_work_conservation(model, fcfs, prio).passed);
}

TEST(AnalyticOracleDetection, EnergyBalanceCatchesLeakedEnergy) {
  const auto model = make_enterprise_model(0.7);
  auto ev = model.evaluate(model.max_frequencies());
  ASSERT_TRUE(ev.stable);
  ASSERT_TRUE(check::check_energy_balance(model, ev).passed);

  auto leaked = ev;
  leaked.energy.per_request_energy[1] *= 1.02;
  EXPECT_FALSE(check::check_energy_balance(model, leaked).passed);

  auto skimmed = ev;
  skimmed.energy.station_avg_power[0] *= 0.97;
  EXPECT_FALSE(check::check_energy_balance(model, skimmed).passed);
}

// ---- simulation-side oracles ----------------------------------------------

class SimOracleFixture : public ::testing::Test {
 protected:
  SimOracleFixture() {
    const auto model = core::make_enterprise_model(0.7);
    config_ = model.to_sim_config(model.max_frequencies(), 50.0, 550.0, 7);
    result_ = sim::simulate(config_);
  }
  sim::SimConfig config_;
  sim::SimResult result_;
};

TEST_F(SimOracleFixture, AllSimulationOraclesHold) {
  const auto report = check::check_simulation(config_, result_);
  EXPECT_TRUE(report.all_passed()) << "worst " << report.worst_violation();
  for (const char* id :
       {"little-law", "flow-conservation", "energy-balance-sim"})
    ASSERT_NE(report.find(id), nullptr) << id;
}

TEST_F(SimOracleFixture, LittleLawCatchesCorruptedQueueLength) {
  ASSERT_TRUE(check::check_little_law(config_, result_).passed);
  auto corrupted = result_;
  corrupted.stations[1].mean_queue_len =
      corrupted.stations[1].mean_queue_len * 1.5 + 1.0;
  EXPECT_FALSE(check::check_little_law(config_, corrupted).passed);
}

TEST_F(SimOracleFixture, FlowConservationCatchesLostRequest) {
  ASSERT_TRUE(check::check_flow_conservation(config_, result_).passed);
  auto corrupted = result_;
  corrupted.classes[0].arrived += 1;  // one arrival never accounted for
  const auto c = check::check_flow_conservation(config_, corrupted);
  EXPECT_FALSE(c.passed);
  EXPECT_GE(c.worst_violation, 1.0);
}

TEST_F(SimOracleFixture, EnergyBalanceCatchesMisattributedJoules) {
  ASSERT_TRUE(check::check_energy_balance_sim(config_, result_).passed);
  auto corrupted = result_;
  for (auto& c : corrupted.classes) c.mean_e2e_energy *= 1.25;
  EXPECT_FALSE(check::check_energy_balance_sim(config_, corrupted).passed);
}

}  // namespace
}  // namespace cpm
