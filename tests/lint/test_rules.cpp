// Registry and rule-set semantics: stable ordered IDs, lookup by ID or
// name, enable/disable filtering, and the emit() choke point every
// analyzer routes through.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cpm/common/error.hpp"
#include "cpm/lint/rules.hpp"

namespace cpm::lint {
namespace {

TEST(RuleRegistry, IdsAreStableOrderedAndUnique) {
  const auto& all = rules();
  ASSERT_GE(all.size(), 27u);  // 10 certify CPM-C rules + 17 lint CPM-L rules
  std::set<std::string> ids;
  std::set<std::string> names;
  std::string prev;
  for (const auto& r : all) {
    const std::string id(r.id);
    EXPECT_TRUE(id.rfind("CPM-L", 0) == 0 || id.rfind("CPM-C", 0) == 0) << r.id;
    EXPECT_LT(prev, id) << "registry must stay ID-ordered";
    prev = id;
    EXPECT_TRUE(ids.insert(id).second) << "duplicate id " << r.id;
    EXPECT_TRUE(names.insert(r.name).second) << "duplicate name " << r.name;
    EXPECT_FALSE(std::string(r.description).empty()) << r.id;
    EXPECT_FALSE(std::string(r.help_uri).empty()) << r.id;
  }
}

TEST(RuleRegistry, LookupByIdAndByName) {
  const Rule* by_id = find_rule("CPM-L001");
  const Rule* by_name = find_rule("tier-overloaded");
  ASSERT_NE(by_id, nullptr);
  EXPECT_EQ(by_id, by_name);
  EXPECT_EQ(by_id->severity, Severity::kError);
  EXPECT_EQ(find_rule("CPM-L999"), nullptr);
  EXPECT_EQ(find_rule(""), nullptr);
}

TEST(RuleSetTest, DefaultEnablesEverythingAndDisableIsReversible) {
  RuleSet rules_set;
  EXPECT_TRUE(rules_set.enabled("CPM-L001"));
  rules_set.disable("CPM-L001");
  EXPECT_FALSE(rules_set.enabled("CPM-L001"));
  EXPECT_TRUE(rules_set.enabled("CPM-L002"));
  rules_set.enable("tier-overloaded");  // re-enable by name
  EXPECT_TRUE(rules_set.enabled("CPM-L001"));
}

TEST(RuleSetTest, OnlyInvertsTheDefault) {
  const RuleSet rules_set =
      RuleSet::only({"CPM-L003", "sla-percentile-below-floor"});
  EXPECT_TRUE(rules_set.enabled("CPM-L003"));
  EXPECT_TRUE(rules_set.enabled("CPM-L004"));
  EXPECT_FALSE(rules_set.enabled("CPM-L001"));
  EXPECT_FALSE(rules_set.enabled("CPM-L017"));
}

TEST(RuleSetTest, UnknownRulesThrow) {
  RuleSet rules_set;
  EXPECT_THROW(rules_set.disable("CPM-L999"), Error);
  EXPECT_THROW(RuleSet::only({"no-such-rule"}), Error);
}

TEST(EmitTest, TakesSeverityFromRegistryAndHonoursRuleSet) {
  LintReport report;
  RuleSet rules_set;
  emit(report, rules_set, "CPM-L013", "settings.replications", "msg", "hint");
  ASSERT_EQ(report.diagnostics().size(), 1u);
  EXPECT_EQ(report.diagnostics()[0].severity, Severity::kNote);
  EXPECT_EQ(report.diagnostics()[0].hint, "hint");

  rules_set.disable("CPM-L013");
  emit(report, rules_set, "CPM-L013", "", "silenced");
  EXPECT_EQ(report.diagnostics().size(), 1u);
}

TEST(SeverityTest, NamesRoundTripAndMatchSarifLevels) {
  for (const Severity s :
       {Severity::kNote, Severity::kWarning, Severity::kError}) {
    EXPECT_EQ(severity_from_name(severity_name(s)), s);
  }
  EXPECT_STREQ(severity_name(Severity::kWarning), "warning");
  EXPECT_THROW(severity_from_name("fatal"), Error);
}

TEST(LintReportTest, CountsWorstAndMerge) {
  LintReport a;
  a.add({"CPM-L013", Severity::kNote, "n", "", ""});
  a.add({"CPM-L002", Severity::kWarning, "w", "", ""});
  EXPECT_EQ(a.worst(), Severity::kWarning);
  EXPECT_EQ(a.count_at_least(Severity::kNote), 2u);
  EXPECT_EQ(a.count_at_least(Severity::kError), 0u);

  LintReport b;
  b.add({"CPM-L001", Severity::kError, "e", "", ""});
  a.merge(std::move(b));
  EXPECT_EQ(a.diagnostics().size(), 3u);
  EXPECT_EQ(a.worst(), Severity::kError);
  EXPECT_EQ(a.count(Severity::kError), 1u);
  EXPECT_EQ(a.count_at_least(Severity::kWarning), 2u);

  EXPECT_EQ(LintReport().worst(), Severity::kNote);
}

}  // namespace
}  // namespace cpm::lint
