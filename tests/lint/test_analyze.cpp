// Per-rule coverage of the cpm::lint analyzer: every rule gets a fixture
// that triggers it AND a near-miss fixture sitting just on the legal side
// of the threshold. The near-misses are the important half — they pin the
// "zero false positives on healthy models" contract the CI lint gate
// relies on.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <utility>

#include "cpm/core/cpm.hpp"
#include "cpm/core/model_io.hpp"
#include "cpm/core/preconditions.hpp"
#include "cpm/lint/analyze.hpp"

namespace cpm {
namespace {

using core::make_enterprise_model;
using lint::LintReport;
using lint::RuleSet;
using lint::Severity;

Json base_doc(double load = 0.5) {
  return core::model_to_json(make_enterprise_model(load));
}

// The factory rejects load >= 1, so overload by scaling rates afterwards:
// db lands at rho = 1.1 while web/app stay stable.
core::ClusterModel overloaded_model() {
  return make_enterprise_model(0.55).with_rate_scale(2.0);
}

std::size_t count_rule(const LintReport& report, const std::string& id) {
  std::size_t n = 0;
  for (const auto& d : report.diagnostics())
    if (d.rule_id == id) ++n;
  return n;
}

const lint::Diagnostic* find_diag(const LintReport& report,
                                  const std::string& id) {
  for (const auto& d : report.diagnostics())
    if (d.rule_id == id) return &d;
  return nullptr;
}

// Mutation helpers: Json values are immutable, so edits copy the affected
// sub-tree, patch it and reassemble the document.
Json edit_doc(const Json& doc, const std::function<void(JsonObject&)>& fn) {
  JsonObject d = doc.as_object();
  fn(d);
  return Json(std::move(d));
}

Json edit_tier(const Json& doc, std::size_t i,
               const std::function<void(JsonObject&)>& fn) {
  return edit_doc(doc, [&](JsonObject& d) {
    JsonArray tiers = d.at("tiers").as_array();
    JsonObject t = tiers[i].as_object();
    fn(t);
    tiers[i] = Json(std::move(t));
    d["tiers"] = Json(std::move(tiers));
  });
}

Json edit_power(const Json& doc, std::size_t i,
                const std::function<void(JsonObject&)>& fn) {
  return edit_tier(doc, i, [&](JsonObject& t) {
    JsonObject p = t.at("power").as_object();
    fn(p);
    t["power"] = Json(std::move(p));
  });
}

Json edit_class(const Json& doc, std::size_t k,
                const std::function<void(JsonObject&)>& fn) {
  return edit_doc(doc, [&](JsonObject& d) {
    JsonArray classes = d.at("classes").as_array();
    JsonObject c = classes[k].as_object();
    fn(c);
    classes[k] = Json(std::move(c));
    d["classes"] = Json(std::move(classes));
  });
}

Json with_sla(const Json& doc, std::size_t k, const char* field, double value) {
  return edit_class(doc, k, [&](JsonObject& c) {
    JsonObject sla = c.at("sla").as_object();
    sla[field] = value;
    c["sla"] = Json(std::move(sla));
  });
}

// ---- zero false positives on healthy models --------------------------------

TEST(LintClean, EnterpriseModelsAreCleanAcrossLoadsAndDisciplines) {
  for (const double load : {0.3, 0.5, 0.7, 0.9}) {
    for (const queueing::Discipline d :
         {queueing::Discipline::kFcfs,
          queueing::Discipline::kNonPreemptivePriority,
          queueing::Discipline::kPreemptiveResume,
          queueing::Discipline::kProcessorSharing}) {
      const Json doc = core::model_to_json(make_enterprise_model(load, d));
      const LintReport report = lint::lint_document(doc);
      EXPECT_TRUE(report.empty())
          << "load " << load << " discipline " << static_cast<int>(d) << ": "
          << (report.empty() ? "" : report.diagnostics()[0].message);
    }
  }
}

// ---- CPM-L001 tier-overloaded ----------------------------------------------

TEST(LintModel, L001FiresOnOverloadedTier) {
  const LintReport report = lint::lint_model(overloaded_model());
  ASSERT_EQ(count_rule(report, "CPM-L001"), 1u);  // only db saturates
  const auto* d = find_diag(report, "CPM-L001");
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->path, "tiers[2]");
  EXPECT_NE(d->message.find("no steady state"), std::string::npos);
  EXPECT_FALSE(d->hint.empty());
}

TEST(LintModel, L001NearMissJustBelowSaturation) {
  const LintReport report = lint::lint_model(make_enterprise_model(0.94));
  EXPECT_EQ(count_rule(report, "CPM-L001"), 0u);
  EXPECT_EQ(count_rule(report, "CPM-L002"), 0u);
}

// ---- CPM-L002 tier-near-saturation -----------------------------------------

TEST(LintModel, L002FiresAboveNinetyFivePercent) {
  const LintReport report = lint::lint_model(make_enterprise_model(0.96));
  EXPECT_EQ(count_rule(report, "CPM-L001"), 0u);
  ASSERT_EQ(count_rule(report, "CPM-L002"), 1u);
  EXPECT_EQ(find_diag(report, "CPM-L002")->severity, Severity::kWarning);
  EXPECT_EQ(find_diag(report, "CPM-L002")->path, "tiers[2].servers");
}

// ---- CPM-L003 / CPM-L004 SLA floors ----------------------------------------

TEST(LintDocument, L003FiresOnMeanSlaBelowFloor) {
  // Gold route demand at f_max: 0.02 + 0.015 + 0.02 = 0.055 s.
  const Json doc = with_sla(base_doc(), 0, "max_mean_delay", 0.054);
  const LintReport report = lint::lint_document(doc);
  ASSERT_EQ(count_rule(report, "CPM-L003"), 1u);
  EXPECT_EQ(find_diag(report, "CPM-L003")->path,
            "classes[0].sla.max_mean_delay");
  EXPECT_EQ(find_diag(report, "CPM-L003")->severity, Severity::kError);
}

TEST(LintDocument, L003FiresAtExactFloor) {
  // The floor is attainable only with zero queueing, which no stable
  // stochastic system achieves — a target exactly AT the floor is
  // statically infeasible, so feasibility is the open comparison
  // target > floor (shared via sla_mean_target_feasible with the
  // optimizer's bail-out and certify). Compute the floor with the shared
  // core function so the comparison is bit-exact.
  const auto model = make_enterprise_model(0.5);
  const double floor =
      core::class_delay_floor(model, 0, model.max_frequencies()).value();
  const Json doc = with_sla(base_doc(), 0, "max_mean_delay", floor);
  EXPECT_EQ(count_rule(lint::lint_document(doc), "CPM-L003"), 1u);
  // Just above the floor is feasible again.
  const Json ok = with_sla(base_doc(), 0, "max_mean_delay",
                           floor * (1.0 + 1e-12));
  EXPECT_EQ(count_rule(lint::lint_document(ok), "CPM-L003"), 0u);
}

TEST(LintDocument, L004FiresOnPercentileSlaBelowFloorAsWarningOnly) {
  const Json doc = with_sla(base_doc(), 0, "max_percentile_delay", 0.01);
  const LintReport report = lint::lint_document(doc);
  ASSERT_EQ(count_rule(report, "CPM-L004"), 1u);
  // A percentile below the MEAN floor is suspicious but not provably
  // infeasible (low percentiles sit below the mean): warning, not error.
  EXPECT_EQ(find_diag(report, "CPM-L004")->severity, Severity::kWarning);
  EXPECT_EQ(count_rule(report, "CPM-L003"), 0u);
}

TEST(LintDocument, L004NearMissAtExactFloor) {
  const auto model = make_enterprise_model(0.5);
  const double floor =
      core::class_delay_floor(model, 0, model.max_frequencies()).value();
  const Json doc = with_sla(base_doc(), 0, "max_percentile_delay", floor);
  EXPECT_EQ(count_rule(lint::lint_document(doc), "CPM-L004"), 0u);
}

// ---- CPM-L005 unreachable-tier ---------------------------------------------

TEST(LintDocument, L005FiresOnTierNoClassVisits) {
  const Json doc = edit_doc(base_doc(), [](JsonObject& d) {
    JsonArray tiers = d.at("tiers").as_array();
    JsonObject ghost = tiers[0].as_object();
    ghost["name"] = "cache";
    tiers.emplace_back(std::move(ghost));
    d["tiers"] = Json(std::move(tiers));
  });
  const LintReport report = lint::lint_document(doc);
  ASSERT_EQ(count_rule(report, "CPM-L005"), 1u);
  EXPECT_EQ(find_diag(report, "CPM-L005")->path, "tiers[3]");
  EXPECT_NE(find_diag(report, "CPM-L005")->message.find("cache"),
            std::string::npos);
}

// ---- CPM-L006 / CPM-L007 class rates ---------------------------------------

TEST(LintDocument, L006FiresOnZeroRateAndL007OnNegativeRate) {
  const Json zero =
      edit_class(base_doc(), 1, [](JsonObject& c) { c["rate"] = 0.0; });
  const LintReport zero_report = lint::lint_document(zero);
  ASSERT_EQ(count_rule(zero_report, "CPM-L006"), 1u);
  EXPECT_EQ(count_rule(zero_report, "CPM-L007"), 0u);
  EXPECT_EQ(find_diag(zero_report, "CPM-L006")->path, "classes[1].rate");

  const Json neg =
      edit_class(base_doc(), 1, [](JsonObject& c) { c["rate"] = -1.0; });
  const LintReport neg_report = lint::lint_document(neg);
  ASSERT_EQ(count_rule(neg_report, "CPM-L007"), 1u);
  EXPECT_EQ(find_diag(neg_report, "CPM-L007")->severity, Severity::kError);
}

TEST(LintDocument, RateNearMissTinyPositiveRateIsClean) {
  const Json doc =
      edit_class(base_doc(), 1, [](JsonObject& c) { c["rate"] = 1e-6; });
  const LintReport report = lint::lint_document(doc);
  EXPECT_EQ(count_rule(report, "CPM-L006"), 0u);
  EXPECT_EQ(count_rule(report, "CPM-L007"), 0u);
}

// ---- CPM-L008 power-curve-inverted -----------------------------------------

TEST(LintDocument, L008FiresWhenBusyDoesNotExceedIdle) {
  const Json doc =
      edit_power(base_doc(), 0, [](JsonObject& p) { p["busy_watts"] = 150.0; });
  const LintReport report = lint::lint_document(doc);
  ASSERT_EQ(count_rule(report, "CPM-L008"), 1u);
  EXPECT_EQ(find_diag(report, "CPM-L008")->path, "tiers[0].power.busy_watts");
  // The document-scope error must pre-empt the duplicate the ServerPower
  // constructor would raise: no CPM-L016 alongside.
  EXPECT_EQ(count_rule(report, "CPM-L016"), 0u);
}

TEST(LintDocument, L008NearMissBusyJustAboveIdle) {
  const Json doc =
      edit_power(base_doc(), 0, [](JsonObject& p) { p["busy_watts"] = 151.0; });
  EXPECT_EQ(count_rule(lint::lint_document(doc), "CPM-L008"), 0u);
}

// ---- CPM-L009 dvfs-range-invalid -------------------------------------------

TEST(LintDocument, L009FiresWhenFminExceedsFmax) {
  const Json doc =
      edit_power(base_doc(), 1, [](JsonObject& p) { p["f_min"] = 1.2; });
  const LintReport report = lint::lint_document(doc);
  ASSERT_EQ(count_rule(report, "CPM-L009"), 1u);
  EXPECT_EQ(find_diag(report, "CPM-L009")->path, "tiers[1].power");
}

TEST(LintDocument, L009NearMissDegenerateRangeIsLegal) {
  // f_min == f_max (no DVFS headroom) is a valid, fixed-frequency tier.
  const Json doc =
      edit_power(base_doc(), 1, [](JsonObject& p) { p["f_min"] = 1.0; });
  EXPECT_EQ(count_rule(lint::lint_document(doc), "CPM-L009"), 0u);
}

// ---- CPM-L010 alpha-sublinear ----------------------------------------------

TEST(LintDocument, L010FiresOnSublinearAlpha) {
  const Json doc =
      edit_power(base_doc(), 2, [](JsonObject& p) { p["alpha"] = 0.5; });
  const LintReport report = lint::lint_document(doc);
  ASSERT_EQ(count_rule(report, "CPM-L010"), 1u);
  EXPECT_EQ(find_diag(report, "CPM-L010")->path, "tiers[2].power.alpha");
  EXPECT_EQ(count_rule(report, "CPM-L016"), 0u);
}

TEST(LintDocument, L010NearMissLinearAlphaIsLegal) {
  const Json doc =
      edit_power(base_doc(), 2, [](JsonObject& p) { p["alpha"] = 1.0; });
  EXPECT_EQ(count_rule(lint::lint_document(doc), "CPM-L010"), 0u);
}

// ---- CPM-L011 priority-sla-inversion ---------------------------------------

TEST(LintDocument, L011FiresWhenLowPriorityHasTighterSla) {
  // bronze (priority 2) tighter than gold (priority 0, SLA 0.25 s).
  const Json doc = with_sla(base_doc(), 2, "max_mean_delay", 0.1);
  const LintReport report = lint::lint_document(doc);
  ASSERT_EQ(count_rule(report, "CPM-L011"), 1u);
  EXPECT_EQ(find_diag(report, "CPM-L011")->path, "classes[2].sla");
  EXPECT_EQ(find_diag(report, "CPM-L011")->severity, Severity::kWarning);
}

TEST(LintDocument, L011NearMissEqualSlasAreLegal) {
  const Json doc = with_sla(base_doc(), 1, "max_mean_delay", 0.25);
  EXPECT_EQ(count_rule(lint::lint_document(doc), "CPM-L011"), 0u);
}

// ---- CPM-L012 / CPM-L013 settings ------------------------------------------

TEST(LintSettings, L012FiresWhenWarmupSwallowsHorizon) {
  core::SimSettings s;
  s.warmup_time = s.end_time;  // empty measurement window
  const LintReport report = lint::lint_sim_settings(s);
  ASSERT_EQ(count_rule(report, "CPM-L012"), 1u);
  EXPECT_EQ(find_diag(report, "CPM-L012")->path, "settings.warmup_time");
}

TEST(LintSettings, L012NearMissWarmupJustBelowHorizon) {
  core::SimSettings s;
  s.warmup_time = s.end_time - 1.0;
  EXPECT_EQ(count_rule(lint::lint_sim_settings(s), "CPM-L012"), 0u);
}

TEST(LintSettings, L013NotesSingleReplication) {
  core::SimSettings s;
  s.replications = 1;
  const LintReport report = lint::lint_sim_settings(s);
  ASSERT_EQ(count_rule(report, "CPM-L013"), 1u);
  EXPECT_EQ(find_diag(report, "CPM-L013")->severity, Severity::kNote);

  s.replications = 2;  // near miss: the smallest CI-capable count
  EXPECT_EQ(count_rule(lint::lint_sim_settings(s), "CPM-L013"), 0u);
}

// ---- CPM-L014 servers-not-positive -----------------------------------------

TEST(LintDocument, L014FiresOnZeroServers) {
  const Json doc =
      edit_tier(base_doc(), 1, [](JsonObject& t) { t["servers"] = 0; });
  const LintReport report = lint::lint_document(doc);
  ASSERT_EQ(count_rule(report, "CPM-L014"), 1u);
  EXPECT_EQ(find_diag(report, "CPM-L014")->path, "tiers[1].servers");
}

TEST(LintDocument, L014NearMissSingleServerIsLegal) {
  const Json doc =
      edit_tier(base_doc(), 1, [](JsonObject& t) { t["servers"] = 1; });
  EXPECT_EQ(count_rule(lint::lint_document(doc), "CPM-L014"), 0u);
}

// ---- CPM-L015 route-invalid ------------------------------------------------

TEST(LintDocument, L015FiresOnEmptyRouteAndUnknownTier) {
  const Json empty = edit_class(
      base_doc(), 0, [](JsonObject& c) { c["route"] = Json(JsonArray{}); });
  EXPECT_EQ(count_rule(lint::lint_document(empty), "CPM-L015"), 1u);

  const Json dangling = edit_class(base_doc(), 0, [](JsonObject& c) {
    JsonArray route = c.at("route").as_array();
    JsonObject step = route[1].as_object();
    step["tier"] = "apppp";  // typo
    route[1] = Json(std::move(step));
    c["route"] = Json(std::move(route));
  });
  const LintReport report = lint::lint_document(dangling);
  ASSERT_EQ(count_rule(report, "CPM-L015"), 1u);
  EXPECT_EQ(find_diag(report, "CPM-L015")->path, "classes[0].route[1].tier");
  EXPECT_NE(find_diag(report, "CPM-L015")->message.find("apppp"),
            std::string::npos);
}

TEST(LintDocument, L015NearMissTierReferenceByIndexIsLegal) {
  const Json doc = edit_class(base_doc(), 0, [](JsonObject& c) {
    JsonArray route = c.at("route").as_array();
    JsonObject step = route[1].as_object();
    step["tier"] = 1;  // numeric index instead of name
    route[1] = Json(std::move(step));
    c["route"] = Json(std::move(route));
  });
  EXPECT_EQ(count_rule(lint::lint_document(doc), "CPM-L015"), 0u);
}

// ---- CPM-L016 schema-error -------------------------------------------------

TEST(LintDocument, L016FiresOnStructuralDefects) {
  // Not an object at all.
  EXPECT_GE(count_rule(lint::lint_document(Json(3.0)), "CPM-L016"), 1u);

  // Missing classes array.
  const Json no_classes = edit_doc(
      base_doc(), [](JsonObject& d) { d.erase("classes"); });
  EXPECT_GE(count_rule(lint::lint_document(no_classes), "CPM-L016"), 1u);

  // Unknown service distribution.
  const Json bad_dist = edit_class(base_doc(), 0, [](JsonObject& c) {
    JsonArray route = c.at("route").as_array();
    JsonObject step = route[0].as_object();
    JsonObject service = step.at("service").as_object();
    service["dist"] = "zipf";
    step["service"] = Json(std::move(service));
    route[0] = Json(std::move(step));
    c["route"] = Json(std::move(route));
  });
  const LintReport report = lint::lint_document(bad_dist);
  ASSERT_GE(count_rule(report, "CPM-L016"), 1u);
  EXPECT_EQ(find_diag(report, "CPM-L016")->path, "classes[0].route[0].service");
}

TEST(LintText, ParseErrorsBecomeL016InsteadOfThrowing) {
  const LintReport report = lint::lint_text("{\"tiers\": [");
  ASSERT_EQ(count_rule(report, "CPM-L016"), 1u);
  EXPECT_EQ(report.worst(), Severity::kError);
}

TEST(LintText, CleanDocumentRoundTripsClean) {
  EXPECT_TRUE(lint::lint_text(base_doc().dump(2)).empty());
}

// ---- CPM-L017 suppressions -------------------------------------------------

TEST(LintDocument, SuppressionWithReasonSilencesRuleWithoutL017) {
  const Json noisy = core::model_to_json(make_enterprise_model(0.96));
  ASSERT_EQ(count_rule(lint::lint_document(noisy), "CPM-L002"), 1u);

  const Json waived = edit_doc(noisy, [](JsonObject& d) {
    JsonObject block;
    block["disable"] = Json(JsonArray{Json("CPM-L002")});
    block["reason"] = "deliberately near-saturated stress scenario";
    d["lint"] = Json(std::move(block));
  });
  EXPECT_TRUE(lint::lint_document(waived).empty());
}

TEST(LintDocument, L017FiresOnReasonlessOrUnknownSuppression) {
  const Json reasonless = edit_doc(base_doc(), [](JsonObject& d) {
    JsonObject block;
    block["disable"] = Json(JsonArray{Json("CPM-L002")});
    d["lint"] = Json(std::move(block));
  });
  const LintReport report = lint::lint_document(reasonless);
  ASSERT_EQ(count_rule(report, "CPM-L017"), 1u);
  EXPECT_EQ(find_diag(report, "CPM-L017")->severity, Severity::kWarning);

  const Json unknown = edit_doc(base_doc(), [](JsonObject& d) {
    JsonObject block;
    block["disable"] = Json(JsonArray{Json("CPM-L999")});
    block["reason"] = "typo in the rule id";
    d["lint"] = Json(std::move(block));
  });
  EXPECT_EQ(count_rule(lint::lint_document(unknown), "CPM-L017"), 1u);
}

// ---- consistency with the runtime preconditions ----------------------------

TEST(LintConsistency, L001MessageMatchesValidateModelPrecondition) {
  const auto model = overloaded_model();
  const auto finding = core::probe_stability(model, model.max_frequencies());
  ASSERT_FALSE(finding.stable);
  const std::string shared = core::overload_description(model, finding);

  // The static finding embeds the canonical description verbatim...
  const LintReport report = lint::lint_model(model);
  ASSERT_EQ(count_rule(report, "CPM-L001"), 1u);
  EXPECT_EQ(find_diag(report, "CPM-L001")->message.rfind(shared, 0), 0u);

  // ...and so does the runtime error validate_model throws.
  try {
    core::validate_model(model, model.max_frequencies(), core::SimSettings{});
    FAIL() << "validate_model accepted an unstable model";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("[CPM-L001]"), std::string::npos) << what;
    EXPECT_NE(what.find(shared), std::string::npos) << what;
  }
}

TEST(LintConsistency, DisabledRuleSuppressesFinding) {
  RuleSet rules;
  rules.disable("tier-overloaded");  // by name, not ID
  const LintReport report = lint::lint_model(overloaded_model(), rules);
  EXPECT_EQ(count_rule(report, "CPM-L001"), 0u);
}

}  // namespace
}  // namespace cpm
