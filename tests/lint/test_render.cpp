// Renderer contracts: the text format humans read, the cpm-lint/v1 JSON
// envelope, and — most load-bearing — the SARIF 2.1.0 shape that CI and
// code-scanning dashboards ingest. The SARIF test round-trips the dump
// through the JSON parser and walks the required spec structure.
#include <gtest/gtest.h>

#include <string>

#include "cpm/common/json.hpp"
#include "cpm/lint/render.hpp"
#include "cpm/lint/rules.hpp"

namespace cpm::lint {
namespace {

LintReport sample_report() {
  LintReport report;
  report.add({"CPM-L001", Severity::kError,
              "tier 'db' has no steady state (rho = 1.5 >= 1)", "tiers[2]",
              "add servers, shed load or raise the tier's frequency"});
  report.add({"CPM-L013", Severity::kNote,
              "1 replication(s): no confidence interval can be formed",
              "settings.replications", ""});
  return report;
}

TEST(RenderText, ListsFindingsWithHintsAndSummary) {
  const std::string out = render_text(sample_report(), "m.json");
  EXPECT_NE(out.find("m.json: error [CPM-L001] tiers[2]: "), std::string::npos)
      << out;
  EXPECT_NE(out.find("hint: add servers"), std::string::npos);
  EXPECT_NE(out.find("1 error(s), 0 warning(s), 1 note(s)"), std::string::npos);
}

TEST(RenderText, CleanReportSaysClean) {
  const std::string out = render_text(LintReport{}, "m.json");
  EXPECT_EQ(out, "m.json: clean\n");
}

TEST(RenderJson, EnvelopeCarriesDiagnosticsAndCounts) {
  const Json doc = render_json(sample_report(), "m.json");
  EXPECT_EQ(doc.at("format").as_string(), "cpm-lint/v1");
  EXPECT_EQ(doc.at("file").as_string(), "m.json");
  const Json& diags = doc.at("diagnostics");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags.at(std::size_t{0}).at("rule").as_string(), "CPM-L001");
  EXPECT_EQ(diags.at(std::size_t{0}).at("severity").as_string(), "error");
  EXPECT_EQ(diags.at(std::size_t{0}).at("path").as_string(), "tiers[2]");
  // Hint is present on the first finding, absent (not empty) on the second.
  EXPECT_TRUE(diags.at(std::size_t{0}).contains("hint"));
  EXPECT_FALSE(diags.at(std::size_t{1}).contains("hint"));
  EXPECT_EQ(doc.at("counts").at("error").as_number(), 1.0);
  EXPECT_EQ(doc.at("counts").at("note").as_number(), 1.0);
}

TEST(RenderSarif, ShapeMatchesSarif210) {
  // Round-trip through the parser: the dump must be valid JSON.
  const Json doc = Json::parse(render_sarif(sample_report(), "m.json").dump(2));

  EXPECT_EQ(doc.at("$schema").as_string(),
            "https://json.schemastore.org/sarif-2.1.0.json");
  EXPECT_EQ(doc.at("version").as_string(), "2.1.0");
  ASSERT_EQ(doc.at("runs").size(), 1u);
  const Json& run = doc.at("runs").at(std::size_t{0});

  // tool.driver carries the full registry so ruleIndex references resolve.
  const Json& driver = run.at("tool").at("driver");
  EXPECT_EQ(driver.at("name").as_string(), "cpm-lint");
  const Json& rule_meta = driver.at("rules");
  ASSERT_EQ(rule_meta.size(), rules().size());
  for (std::size_t i = 0; i < rule_meta.size(); ++i) {
    EXPECT_EQ(rule_meta.at(i).at("id").as_string(), rules()[i].id);
    EXPECT_FALSE(
        rule_meta.at(i).at("shortDescription").at("text").as_string().empty());
    // Code-scanning dashboards surface fullDescription and link helpUri;
    // both must be populated from the registry for every rule.
    EXPECT_EQ(rule_meta.at(i).at("fullDescription").at("text").as_string(),
              rules()[i].description);
    EXPECT_EQ(rule_meta.at(i).at("helpUri").as_string(), rules()[i].help_uri);
    EXPECT_NE(rule_meta.at(i).at("helpUri").as_string().find("docs/certify.md"),
              std::string::npos);
    EXPECT_EQ(rule_meta.at(i).at("defaultConfiguration").at("level").as_string(),
              severity_name(rules()[i].severity));
  }

  ASSERT_EQ(run.at("artifacts").size(), 1u);
  EXPECT_EQ(run.at("artifacts")
                .at(std::size_t{0})
                .at("location")
                .at("uri")
                .as_string(),
            "m.json");

  const Json& results = run.at("results");
  ASSERT_EQ(results.size(), 2u);
  const Json& first = results.at(std::size_t{0});
  EXPECT_EQ(first.at("ruleId").as_string(), "CPM-L001");
  EXPECT_EQ(first.at("level").as_string(), "error");
  // ruleIndex must point back at the same rule in tool.driver.rules.
  const auto index = static_cast<std::size_t>(first.at("ruleIndex").as_number());
  EXPECT_EQ(rule_meta.at(index).at("id").as_string(), "CPM-L001");
  // Hints ride along in the message text.
  EXPECT_NE(first.at("message").at("text").as_string().find("hint:"),
            std::string::npos);

  const Json& location = first.at("locations").at(std::size_t{0});
  EXPECT_EQ(location.at("physicalLocation")
                .at("artifactLocation")
                .at("uri")
                .as_string(),
            "m.json");
  EXPECT_EQ(location.at("logicalLocations")
                .at(std::size_t{0})
                .at("fullyQualifiedName")
                .as_string(),
            "tiers[2]");
}

TEST(RenderSarif, EmptyReportStillCarriesToolMetadata) {
  const Json doc = render_sarif(LintReport{}, "clean.json");
  const Json& run = doc.at("runs").at(std::size_t{0});
  EXPECT_EQ(run.at("results").size(), 0u);
  EXPECT_EQ(run.at("tool").at("driver").at("rules").size(), rules().size());
}

}  // namespace
}  // namespace cpm::lint
