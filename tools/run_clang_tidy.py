#!/usr/bin/env python3
"""clang-tidy ratchet runner.

Runs the curated .clang-tidy check set over the library and tool sources
and compares the diagnostic counts against a committed baseline
(tools/clang_tidy_baseline.json). The gate is a one-way ratchet:

  * any check whose count EXCEEDS its baseline count fails the run
    (exit 1) — new debt cannot land;
  * counts below baseline succeed but print a reminder to ratchet the
    baseline down (--update-baseline rewrites it);
  * --update-baseline refuses to RAISE the total (that would be a
    regression dressed up as maintenance); pass --allow-increase after a
    deliberate decision, e.g. enabling a new check in .clang-tidy.

Diagnostics are deduplicated on (file, line, column, check): a header
diagnosed through five translation units is one finding, not five.
--warnings-as-errors=-* is forced so the WarningsAsErrors profile in
.clang-tidy cannot turn counting runs into hard failures; severity is
the baseline's job here.

Usage:
  tools/run_clang_tidy.py [--build-dir build] [--baseline FILE]
                          [--update-baseline] [--allow-increase]
                          [--sarif FILE] [--jobs N] [--clang-tidy BIN]
                          [paths ...]        (default: src tools)

Exit codes: 0 ok, 1 ratchet regression, 3 environment error (no
clang-tidy binary, no compile_commands.json).
"""
import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys
from pathlib import Path

BASELINE_SCHEMA = "cpm-clang-tidy-baseline/v1"

DIAG_RE = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): (?P<msg>.*) \[(?P<checks>[\w.,*-]+)\]$")


class Diagnostic:
    def __init__(self, file: str, line: int, col: int, msg: str, check: str):
        self.file = file
        self.line = line
        self.col = col
        self.msg = msg
        self.check = check

    def key(self):
        return (self.file, self.line, self.col, self.check)


def parse_diagnostics(output: str, root: Path) -> list[Diagnostic]:
    diags = []
    for line in output.splitlines():
        m = DIAG_RE.match(line.strip())
        if not m:
            continue
        path = Path(m.group("file"))
        try:
            rel = str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            rel = str(path)
        # A diagnostic may carry several check names; attribute to the
        # first (clang-tidy's own convention for aliases).
        check = m.group("checks").split(",")[0]
        diags.append(Diagnostic(rel, int(m.group("line")),
                                int(m.group("col")), m.group("msg"), check))
    return diags


def dedupe(diags: list[Diagnostic]) -> list[Diagnostic]:
    seen = set()
    unique = []
    for d in diags:
        if d.key() in seen:
            continue
        seen.add(d.key())
        unique.append(d)
    return unique


def count_by_check(diags: list[Diagnostic]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for d in diags:
        counts[d.check] = counts.get(d.check, 0) + 1
    return counts


def load_baseline(path: Path) -> dict:
    doc = json.loads(path.read_text(encoding="utf-8"))
    if doc.get("schema") != BASELINE_SCHEMA:
        raise SystemExit(f"error: {path} is not a {BASELINE_SCHEMA} document")
    return doc


def baseline_doc(counts: dict[str, int]) -> dict:
    return {
        "schema": BASELINE_SCHEMA,
        "total": sum(counts.values()),
        "by_check": dict(sorted(counts.items())),
    }


def compare(counts: dict[str, int], baseline: dict) -> tuple[list[str], bool]:
    """Returns (regression messages, improved?)."""
    base_counts = baseline.get("by_check", {})
    regressions = []
    for check in sorted(set(counts) | set(base_counts)):
        now = counts.get(check, 0)
        allowed = base_counts.get(check, 0)
        if now > allowed:
            regressions.append(
                f"  {check}: {now} finding(s), baseline allows {allowed}")
    improved = sum(counts.values()) < baseline.get("total", 0)
    return regressions, improved


def to_sarif(diags: list[Diagnostic]) -> dict:
    checks = sorted({d.check for d in diags})
    rule_index = {c: i for i, c in enumerate(checks)}
    return {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                    "master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "clang-tidy",
                    "rules": [{"id": c} for c in checks],
                }
            },
            "results": [{
                "ruleId": d.check,
                "ruleIndex": rule_index[d.check],
                "level": "warning",
                "message": {"text": d.msg},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": d.file},
                        "region": {"startLine": d.line,
                                   "startColumn": d.col},
                    }
                }],
            } for d in diags],
        }],
    }


def collect_sources(root: Path, paths: list[str]) -> list[Path]:
    sources = []
    for top in paths:
        sources.extend(sorted((root / top).rglob("*.cpp")))
    return sources


def run_one(binary: str, build_dir: Path, source: Path) -> str:
    proc = subprocess.run(
        [binary, "-p", str(build_dir), "--warnings-as-errors=-*",
         str(source)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        check=False)
    return proc.stdout


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None,
                        help="source roots relative to the repo root "
                             "(default: src tools)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--build-dir", default="build",
                        help="build tree with compile_commands.json")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON "
                             "(default: tools/clang_tidy_baseline.json)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run's counts")
    parser.add_argument("--allow-increase", action="store_true",
                        help="let --update-baseline raise the total")
    parser.add_argument("--sarif", default=None,
                        help="write diagnostics as SARIF 2.1.0 here")
    parser.add_argument("--jobs", type=int,
                        default=max(1, os.cpu_count() or 1))
    parser.add_argument("--clang-tidy", default="clang-tidy",
                        help="clang-tidy binary to invoke")
    args = parser.parse_args(argv)

    root = Path(args.root) if args.root else Path(__file__).parent.parent
    build_dir = Path(args.build_dir)
    if not build_dir.is_absolute():
        build_dir = root / build_dir
    baseline_path = (Path(args.baseline) if args.baseline
                     else root / "tools" / "clang_tidy_baseline.json")

    if shutil.which(args.clang_tidy) is None:
        print(f"error: '{args.clang_tidy}' not found on PATH",
              file=sys.stderr)
        return 3
    if not (build_dir / "compile_commands.json").exists():
        print(f"error: {build_dir}/compile_commands.json missing — "
              "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON",
              file=sys.stderr)
        return 3

    sources = collect_sources(root, args.paths or ["src", "tools"])
    if not sources:
        print("error: no .cpp sources found", file=sys.stderr)
        return 3

    diags: list[Diagnostic] = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        outputs = pool.map(
            lambda s: run_one(args.clang_tidy, build_dir, s), sources)
        for output in outputs:
            diags.extend(parse_diagnostics(output, root))
    diags = dedupe(diags)
    diags.sort(key=Diagnostic.key)
    counts = count_by_check(diags)
    total = sum(counts.values())

    for d in diags:
        print(f"{d.file}:{d.line}:{d.col}: {d.msg} [{d.check}]")
    print(f"run_clang_tidy: {total} finding(s) across {len(sources)} "
          "source file(s)")

    if args.sarif:
        Path(args.sarif).write_text(
            json.dumps(to_sarif(diags), indent=2) + "\n", encoding="utf-8")

    if args.update_baseline:
        if baseline_path.exists():
            old_total = load_baseline(baseline_path).get("total", 0)
            if total > old_total and not args.allow_increase:
                print(f"error: refusing to raise the baseline "
                      f"({old_total} -> {total}); the ratchet only turns "
                      "down (pass --allow-increase if this is deliberate, "
                      "e.g. a newly enabled check)", file=sys.stderr)
                return 1
        baseline_path.write_text(
            json.dumps(baseline_doc(counts), indent=2) + "\n",
            encoding="utf-8")
        print(f"baseline updated: {baseline_path} (total {total})")
        return 0

    if not baseline_path.exists():
        print(f"error: baseline {baseline_path} missing — create it with "
              "--update-baseline", file=sys.stderr)
        return 3
    baseline = load_baseline(baseline_path)
    regressions, improved = compare(counts, baseline)
    if regressions:
        print("clang-tidy ratchet REGRESSION "
              f"(baseline total {baseline.get('total', 0)}):")
        for r in regressions:
            print(r)
        return 1
    if improved:
        print(f"ratchet can tighten: {total} finding(s) < baseline "
              f"{baseline.get('total', 0)} — rerun with --update-baseline "
              "and commit the new baseline")
    else:
        print("clang-tidy ratchet OK (no regression)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
