#!/usr/bin/env python3
"""Unit tests for tools/run_clang_tidy.py. clang-tidy itself is not
required: end-to-end cases run against a stub binary that emits canned
diagnostics, so the ratchet logic (parse, dedupe, compare, baseline
update refusal, SARIF) is testable on any machine.

Run directly (python3 tools/test_run_clang_tidy.py) or through ctest
(clang_tidy_ratchet_unit_tests).
"""
import json
import os
import stat
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
import run_clang_tidy as rct  # noqa: E402

STUB = """#!/bin/sh
# Fake clang-tidy: last argument is the source file; diagnostics depend
# on its name so tests can stage clean and dirty trees.
for last; do :; done
case "$last" in
  *dirty*)
    echo "$last:3:5: warning: do not do the thing [bugprone-thing]"
    echo "$last:9:1: warning: slow loop [performance-loop]"
    ;;
esac
exit 0
"""


class ParseTest(unittest.TestCase):
    def test_parses_warning_lines(self):
        out = ("/r/src/a.cpp:12:3: warning: msg text [bugprone-x]\n"
               "note: expanded from here\n"
               "random noise\n")
        diags = rct.parse_diagnostics(out, Path("/r"))
        self.assertEqual(len(diags), 1)
        d = diags[0]
        self.assertEqual((d.file, d.line, d.col, d.check),
                         ("src/a.cpp", 12, 3, "bugprone-x"))

    def test_error_severity_and_alias_checks(self):
        out = "/r/t.cpp:1:1: error: bad [bugprone-x,cert-err34-c]\n"
        diags = rct.parse_diagnostics(out, Path("/r"))
        self.assertEqual(diags[0].check, "bugprone-x")

    def test_dedupe_collapses_header_repeats(self):
        out = "/r/src/h.hpp:4:2: warning: m [bugprone-x]\n"
        diags = rct.parse_diagnostics(out * 3, Path("/r"))
        self.assertEqual(len(rct.dedupe(diags)), 1)


class CompareTest(unittest.TestCase):
    def baseline(self, by_check):
        return {"schema": rct.BASELINE_SCHEMA,
                "total": sum(by_check.values()), "by_check": by_check}

    def test_within_baseline_is_ok(self):
        regressions, improved = rct.compare(
            {"bugprone-x": 2}, self.baseline({"bugprone-x": 2}))
        self.assertEqual(regressions, [])
        self.assertFalse(improved)

    def test_count_increase_is_regression(self):
        regressions, _ = rct.compare(
            {"bugprone-x": 3}, self.baseline({"bugprone-x": 2}))
        self.assertEqual(len(regressions), 1)
        self.assertIn("bugprone-x", regressions[0])

    def test_new_check_is_regression(self):
        regressions, _ = rct.compare(
            {"bugprone-new": 1}, self.baseline({"bugprone-x": 2}))
        self.assertEqual(len(regressions), 1)
        self.assertIn("bugprone-new", regressions[0])

    def test_decrease_reports_improvement(self):
        regressions, improved = rct.compare(
            {"bugprone-x": 1}, self.baseline({"bugprone-x": 2}))
        self.assertEqual(regressions, [])
        self.assertTrue(improved)

    def test_trading_checks_is_still_a_regression(self):
        # One check dropping cannot pay for another check rising.
        regressions, _ = rct.compare(
            {"bugprone-x": 0, "performance-y": 1},
            self.baseline({"bugprone-x": 5, "performance-y": 0}))
        self.assertEqual(len(regressions), 1)
        self.assertIn("performance-y", regressions[0])


class EndToEndTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.root = Path(self.tmp.name)
        (self.root / "tools").mkdir()
        (self.root / "build").mkdir()
        (self.root / "build" / "compile_commands.json").write_text(
            "[]", encoding="utf-8")
        self.stub = self.root / "fake-clang-tidy"
        self.stub.write_text(STUB, encoding="utf-8")
        self.stub.chmod(self.stub.stat().st_mode | stat.S_IXUSR)
        self.baseline = self.root / "tools" / "clang_tidy_baseline.json"

    def tearDown(self):
        self.tmp.cleanup()

    def write_baseline(self, by_check):
        self.baseline.write_text(json.dumps({
            "schema": rct.BASELINE_SCHEMA,
            "total": sum(by_check.values()),
            "by_check": by_check,
        }), encoding="utf-8")

    def stage(self, name):
        (self.root / "src").mkdir(exist_ok=True)
        (self.root / "src" / name).write_text("int x;\n", encoding="utf-8")

    def run_main(self, *extra):
        return rct.main(["--root", str(self.root),
                         "--build-dir", str(self.root / "build"),
                         "--clang-tidy", str(self.stub), "src", *extra])

    def test_clean_tree_passes_zero_baseline(self):
        self.stage("clean.cpp")
        self.write_baseline({})
        self.assertEqual(self.run_main(), 0)

    def test_findings_over_zero_baseline_fail(self):
        self.stage("dirty.cpp")
        self.write_baseline({})
        self.assertEqual(self.run_main(), 1)

    def test_findings_within_baseline_pass(self):
        self.stage("dirty.cpp")
        self.write_baseline({"bugprone-thing": 1, "performance-loop": 1})
        self.assertEqual(self.run_main(), 0)

    def test_update_baseline_writes_counts(self):
        self.stage("dirty.cpp")
        self.assertEqual(self.run_main("--update-baseline"), 0)
        doc = json.loads(self.baseline.read_text(encoding="utf-8"))
        self.assertEqual(doc["total"], 2)
        self.assertEqual(doc["by_check"],
                         {"bugprone-thing": 1, "performance-loop": 1})

    def test_update_refuses_to_raise_total(self):
        self.stage("dirty.cpp")
        self.write_baseline({})  # total 0, run finds 2
        self.assertEqual(self.run_main("--update-baseline"), 1)
        doc = json.loads(self.baseline.read_text(encoding="utf-8"))
        self.assertEqual(doc["total"], 0)  # untouched
        self.assertEqual(self.run_main("--update-baseline",
                                       "--allow-increase"), 0)
        doc = json.loads(self.baseline.read_text(encoding="utf-8"))
        self.assertEqual(doc["total"], 2)

    def test_sarif_artifact_shape(self):
        self.stage("dirty.cpp")
        self.write_baseline({"bugprone-thing": 1, "performance-loop": 1})
        sarif = self.root / "tidy.sarif"
        self.assertEqual(self.run_main("--sarif", str(sarif)), 0)
        doc = json.loads(sarif.read_text(encoding="utf-8"))
        self.assertEqual(doc["version"], "2.1.0")
        run = doc["runs"][0]
        self.assertEqual(run["tool"]["driver"]["name"], "clang-tidy")
        self.assertEqual(len(run["results"]), 2)
        self.assertEqual(
            {r["ruleId"] for r in run["results"]},
            {"bugprone-thing", "performance-loop"})

    def test_missing_compile_commands_is_environment_error(self):
        self.stage("clean.cpp")
        self.write_baseline({})
        os.remove(self.root / "build" / "compile_commands.json")
        self.assertEqual(self.run_main(), 3)

    def test_missing_baseline_is_environment_error(self):
        self.stage("clean.cpp")
        self.assertEqual(self.run_main(), 3)


if __name__ == "__main__":
    unittest.main()
