#!/usr/bin/env python3
"""Repo-convention linter for the C++ sources (the cheap, grep-level
checks clang-tidy does not cover). Enforced rules:

  CONV-1  library code (src/**) must not use rand()/srand(): every random
          draw goes through cpm::RandomStream so replications are
          reproducible and independent.
  CONV-2  library code (src/**) must not write to std::cout/std::cerr:
          libraries return values and throw cpm::Error; only tools/ and
          tests/ talk to streams.
  CONV-3  every header must start its include guard with #pragma once.
  CONV-4  headers must not contain using-namespace directives (they leak
          into every includer).
  CONV-5  library code must not compare doubles with exact == / != —
          interval endpoints, utilisations and delays carry rounding;
          use explicit tolerances or restructure. Comparisons against
          the exact literal 0.0 are allowed (sign tests are well-defined),
          and a trailing "// conv-ok: CONV-5" comment waives a line that
          is deliberately bit-exact.
  CONV-6  library code must not use assert(): it vanishes under NDEBUG.
          Use cpm::require(), which throws cpm::Error in every build.

Usage: tools/lint_cpp.py [root]    (root defaults to the repo root)
Exit code 0 when clean, 1 when any violation is found.
"""
import re
import sys
from pathlib import Path

RULES = [
    # (id, applies-to-library-sources-only, headers-only, regex, message)
    ("CONV-1", True, False, re.compile(r"\b(?:s?rand)\s*\("),
     "rand()/srand() in library code: use cpm::RandomStream"),
    ("CONV-2", True, False, re.compile(r"\bstd::c(?:out|err)\b"),
     "stream output in library code: return values or throw cpm::Error"),
    ("CONV-4", False, True, re.compile(r"^\s*using\s+namespace\b"),
     "using-namespace in a header leaks into every includer"),
    ("CONV-6", True, False, re.compile(r"(?<![\w.])assert\s*\("),
     "assert() vanishes under NDEBUG: use cpm::require()"),
]

CODE_LINE = re.compile(r"^\s*(?://|\*|/\*)")  # comment-only lines

# CONV-5: exact ==/!= where either side is a floating-point expression —
# a double literal (1.0, 1e-9, .5) or a call/member spelled like the
# numeric accessors (.mean(), .scv(), .lo, .hi). Kept deliberately
# grep-level: a float literal adjacent to ==/!= is the high-signal case.
FLOAT_LITERAL = r"(?<![\w.])(?:\d+\.\d*|\.\d+|\d+\.?\d*[eE][-+]?\d+)(?![\w.])"
FLOAT_EQ = re.compile(
    rf"{FLOAT_LITERAL}\s*[!=]=|[!=]=\s*{FLOAT_LITERAL}")
ZERO_LITERAL = re.compile(
    rf"(?<![\w.])0+\.0*(?:[eE][-+]?\d+)?\s*[!=]=|[!=]=\s*(?<![\w.])0+\.0*(?:[eE][-+]?\d+)?(?![\w.])")
WAIVER = re.compile(r"//\s*conv-ok:\s*([A-Z0-9-]+(?:\s*,\s*[A-Z0-9-]+)*)")


def waived(line: str, rule: str) -> bool:
    m = WAIVER.search(line)
    return bool(m) and rule in re.split(r"\s*,\s*", m.group(1))


def conv5_violates(line: str) -> bool:
    """True when the line compares a non-zero float literal with == / !=."""
    if not FLOAT_EQ.search(line):
        return False
    # Allow when every float-literal comparison on the line is against 0.0.
    stripped = ZERO_LITERAL.sub("", line)
    return bool(FLOAT_EQ.search(stripped))


def lint_file(path: Path, in_library: bool) -> list[str]:
    text = path.read_text(encoding="utf-8")
    is_header = path.suffix == ".hpp"
    errors = []
    if is_header and "#pragma once" not in text:
        errors.append(f"{path}:1: [CONV-3] header lacks #pragma once")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if CODE_LINE.match(line):
            continue
        for rule, library_only, headers_only, pattern, message in RULES:
            if library_only and not in_library:
                continue
            if headers_only and not is_header:
                continue
            if pattern.search(line) and not waived(line, rule):
                errors.append(f"{path}:{lineno}: [{rule}] {message}")
        if in_library and conv5_violates(line) and not waived(line, "CONV-5"):
            errors.append(
                f"{path}:{lineno}: [CONV-5] exact ==/!= on a double: "
                "use a tolerance (or waive with // conv-ok: CONV-5)")
    return errors


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent.parent
    errors = []
    for pattern, in_library in (("src/**/*.[ch]pp", True),
                                ("tools/**/*.[ch]pp", False),
                                ("tests/**/*.[ch]pp", False)):
        for path in sorted(root.glob(pattern)):
            errors.extend(lint_file(path, in_library))
    for error in errors:
        print(error)
    print(f"lint_cpp: {len(errors)} violation(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
