#!/usr/bin/env python3
"""Repo-convention linter for the C++ sources (the cheap, grep-level
checks clang-tidy does not cover).

Convention rules:

  CONV-1  library code (src/**) must not use rand()/srand(): every random
          draw goes through cpm::RandomStream so replications are
          reproducible and independent.
  CONV-2  library code (src/**) must not write to std::cout/std::cerr:
          libraries return values and throw cpm::Error; only tools/ and
          tests/ talk to streams.
  CONV-3  every header must start its include guard with #pragma once.
  CONV-4  headers must not contain using-namespace directives (they leak
          into every includer).
  CONV-5  library code must not compare doubles with exact == / != —
          interval endpoints, utilisations and delays carry rounding;
          use explicit tolerances or restructure. Comparisons against
          the exact literal 0.0 are allowed (sign tests are well-defined).
  CONV-6  library code must not use assert(): it vanishes under NDEBUG.
          Use cpm::require(), which throws cpm::Error in every build.

Determinism rules (DET): the repo's headline guarantees — byte-identical
sharded sweeps, same-seed cpm-online/v1 timelines, thread-count-invariant
replicate() — die silently when a library path reads ambient state. These
rules ban the ambient-state entry points at the source level:

  DET-1   library code must not use std::random_device: it is a fresh
          entropy source per call, so no two runs can ever agree. Seeds
          come in through configs and flow through cpm::RandomStream.
  DET-2   library code must not read the wall clock (system_clock,
          time(nullptr), gettimeofday, localtime, mktime): results would
          depend on when the run happened. steady_clock is fine — it is
          only valid for durations, which land in provenance sidecars.
  DET-3   library code must not read the environment (getenv): two hosts
          with different environments would compute different results.
          Configuration enters through explicit options structs.
  DET-4   library code must not iterate an unordered_{map,set}: the visit
          order is hash-seed- and libc++-version-dependent, so any
          serialization or float accumulation fed from the loop differs
          across builds. Iterate a sorted std::map/std::set, or sort keys
          first. (Insert/lookup-only use of unordered containers is fine
          and encouraged — only iteration is order-sensitive.)
  DET-5   library code must not format or hash pointer addresses
          (%p, streaming static_cast<void*>, std::hash<T*>,
          reinterpret_cast to uintptr_t): ASLR makes addresses differ
          every run, so any output or key containing one is unstable.

I/O-seam rules (IO): the resilience guarantees — deterministic fault
injection, crash-safe journaled resume, classified retry — only hold if
every artifact read/write in library code flows through the
cpm::FileSystem seam (cpm/common/fs.hpp). RealFileSystem is the single
sanctioned implementation; these rules keep raw I/O from leaking back in:

  IO-1    library code must not open raw file streams or CRT handles
          (std::ofstream/ifstream/fstream, fopen, std::FILE): reads and
          writes go through a FileSystem& so faults can be injected and
          transient errors retried.
  IO-2    library code must not mutate the filesystem directly
          (std::filesystem::rename/remove/remove_all/create_directories/
          copy/resize_file, std::rename): atomic publish and cleanup
          live behind the seam, where crash-safety is proven once.

Both rules exempt the sanctioned seam implementation
(src/common/src/fs.cpp and its header) and apply to src/ only — tools/
and tests/ may talk to the disk directly.

Units rules (UNIT): cpm::units makes dimension mix-ups (rate-for-delay,
W-for-J) unrepresentable, but only where the types are actually used.
These rules flag raw `double` declarations in src/ public headers whose
names carry dimension vocabulary (rate, delay, power, freq, energy,
watts, joules) — the places where `units::Rate`, `units::Seconds`,
`units::Watts`, ... belong. Genuine dimensionless scalars (utilization,
smoothing factors, percentiles) and policy-sanctioned raw containers
(per-tier frequency vectors) carry waivers:

  UNIT-1  dimension-named double PARAMETER in a src/ header.
  UNIT-2  dimension-named double FIELD (or header-scope variable).
  UNIT-3  dimension-named function RETURNING raw double.
  UNIT-4  dimension-named std::vector<double> parameter or field.

All rules skip comments and string/char literals (a "std::cout" inside a
doc string is prose, not a violation) — except the %p half of DET-5,
which by nature lives inside format strings and is matched there.

A trailing "// conv-ok: RULE-ID" comment waives that rule for the line
(comma-separate to waive several); every waiver should carry a nearby
comment explaining why the line is sound.

Usage: tools/lint_cpp.py [root] [--format text|sarif] [--out FILE]
                         [--changed-only]
Exit code 0 when clean, 1 when any violation is found.
"""
import argparse
import json
import re
import subprocess
import sys
from pathlib import Path

# ---------------------------------------------------------------------------
# Source views: strip comments and literals so patterns only see code.
# ---------------------------------------------------------------------------


def source_views(text: str) -> tuple[list[str], list[str]]:
    """Splits `text` into lines rendered in two views:

    * code view: comments AND string/char-literal contents blanked,
    * nocomment view: only comments blanked (literals kept).

    Both views preserve line count and column positions (stripped spans
    become spaces), so reported line numbers match the original file.
    """
    code: list[str] = []
    nocomment: list[str] = []
    code_line: list[str] = []
    nc_line: list[str] = []

    CODE, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR, RAW = range(6)
    state = CODE
    raw_delim = ""  # the )delim" terminator of an active raw string
    prev_code_char = ""  # last non-space char emitted in CODE state

    def emit(code_ch: str, nc_ch: str) -> None:
        code_line.append(code_ch)
        nc_line.append(nc_ch)

    def newline() -> None:
        nonlocal code_line, nc_line
        code.append("".join(code_line))
        nocomment.append("".join(nc_line))
        code_line = []
        nc_line = []

    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            if state == LINE_COMMENT:
                state = CODE
            newline()
            i += 1
            continue

        if state == CODE:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                emit(" ", " ")
                emit(" ", " ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                emit(" ", " ")
                emit(" ", " ")
                i += 2
                continue
            # Raw string literal: R"delim( ... )delim" (any prefix u8R etc.
            # ends in R). The body is blanked in the code view only.
            if c == '"' and prev_code_char.endswith("R"):
                close = text.find("(", i + 1)
                if close != -1 and close - i <= 17:
                    raw_delim = ")" + text[i + 1 : close] + '"'
                    state = RAW
                    emit('"', '"')
                    i += 1
                    continue
            if c == '"':
                state = STRING
                emit('"', '"')
                i += 1
                continue
            # A single quote opens a char literal only in operator/delimiter
            # context; after an identifier or digit it is a digit separator
            # (1'000'000) or literal suffix and stays plain code.
            if c == "'" and not (prev_code_char and
                                 (prev_code_char.isalnum() or
                                  prev_code_char == "_")):
                state = CHAR
                emit("'", "'")
                i += 1
                continue
            emit(c, c)
            if not c.isspace():
                prev_code_char = c
            i += 1
            continue

        if state == LINE_COMMENT:
            emit(" ", " ")
            i += 1
            continue

        if state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = CODE
                emit(" ", " ")
                emit(" ", " ")
                i += 2
                continue
            emit(" ", " ")
            i += 1
            continue

        if state == STRING:
            if c == "\\" and nxt:
                emit(" ", "\\")
                emit(" ", nxt if nxt != "\n" else " ")
                if nxt == "\n":
                    newline()
                i += 2
                continue
            if c == '"':
                state = CODE
                prev_code_char = '"'
                emit('"', '"')
                i += 1
                continue
            emit(" ", c)
            i += 1
            continue

        if state == CHAR:
            if c == "\\" and nxt:
                emit(" ", " ")
                emit(" ", " ")
                i += 2
                continue
            if c == "'":
                state = CODE
                prev_code_char = "'"
                emit("'", "'")
                i += 1
                continue
            emit(" ", " ")
            i += 1
            continue

        # RAW string body: blanked in code view, kept in nocomment view.
        if text.startswith(raw_delim, i):
            for ch in raw_delim:
                emit(ch if ch in ')"' else " ", ch)
            i += len(raw_delim)
            state = CODE
            prev_code_char = '"'
            continue
        emit(" ", c)
        i += 1

    newline()
    return code, nocomment


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

# (id, applies-to-library-sources-only, headers-only, view, regex, message)
# view: "code" = comments + literal contents stripped, "nocomment" =
# comments stripped but literals kept (for patterns that target format
# strings).
RULES = [
    ("CONV-1", True, False, "code", re.compile(r"\b(?:s?rand)\s*\("),
     "rand()/srand() in library code: use cpm::RandomStream"),
    ("CONV-2", True, False, "code", re.compile(r"\bstd::c(?:out|err)\b"),
     "stream output in library code: return values or throw cpm::Error"),
    ("CONV-4", False, True, "code", re.compile(r"^\s*using\s+namespace\b"),
     "using-namespace in a header leaks into every includer"),
    ("CONV-6", True, False, "code", re.compile(r"(?<![\w.])assert\s*\("),
     "assert() vanishes under NDEBUG: use cpm::require()"),
    ("DET-1", True, False, "code", re.compile(r"(?<!\w)random_device(?!\w)"),
     "std::random_device is fresh entropy per call: seeds must come from "
     "the config and flow through cpm::RandomStream"),
    ("DET-2", True, False, "code", re.compile(
        r"(?<!\w)(?:system_clock|gettimeofday|localtime|mktime)(?!\w)"
        r"|(?<![\w.])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "wall-clock read in library code: results would depend on when the "
     "run happened (steady_clock durations for provenance are fine)"),
    ("DET-3", True, False, "code", re.compile(r"(?<!\w)getenv(?!\w)"),
     "environment read in library code: configuration enters through "
     "explicit options structs, not ambient host state"),
    ("DET-5", True, False, "code", re.compile(
        r"std::hash<[^<>]*\*\s*>"
        r"|static_cast<\s*(?:const\s+)?void\s*\*\s*>"
        r"|reinterpret_cast<\s*(?:std::)?u?intptr_t"),
     "pointer address in an output/key path: ASLR makes it differ every "
     "run"),
    ("DET-5", True, False, "nocomment", re.compile(r"%p(?![\w])"),
     "%p formats a pointer address: ASLR makes it differ every run"),
    ("IO-1", True, False, "code", re.compile(
        r"std::[io]?fstream\b|(?<![\w.])(?:std::)?fopen\s*\(|std::FILE\b"),
     "raw file I/O in library code: route reads/writes through the "
     "cpm::FileSystem seam (cpm/common/fs.hpp) so faults can be injected "
     "and transient errors retried"),
    ("IO-2", True, False, "code", re.compile(
        r"(?:std::filesystem|stdfs|(?<!\w)fs)\s*::\s*"
        r"(?:rename|remove(?:_all)?|create_director(?:y|ies)"
        r"|copy(?:_file)?|resize_file)\b"
        r"|std::rename\s*\("),
     "raw filesystem mutation in library code: atomic publish and cleanup "
     "live behind the cpm::FileSystem seam, where crash-safety is proven "
     "once"),
]

# The seam implementation itself is the one sanctioned home for raw I/O.
IO_SANCTIONED_SUFFIXES = (
    "src/common/src/fs.cpp",
    "src/common/include/cpm/common/fs.hpp",
)

# DET-4 needs file-level context (which identifiers are unordered
# containers), so it is implemented as a dedicated pass below.
UNORDERED_DECL = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s*[&*]?\s*"
    r"(\w+)\s*(?:[;={(,)]|$)")
RANGE_FOR = re.compile(r"\bfor\s*\(\s*[^;()]*:\s*(?:\w+\.)*(\w+)\s*\)")
BEGIN_CALL = re.compile(r"(?<!\w)(\w+)\s*\.\s*(?:begin|cbegin|rbegin)\s*\(")

DET4_MESSAGE = (
    "iteration over an unordered container: visit order is hash-seed-"
    "dependent, so serialized or accumulated results differ across "
    "builds — iterate a sorted std::map/set or sort the keys first")

# CONV-5: exact ==/!= where either side is a floating-point expression —
# a double literal (1.0, 1e-9, .5). Kept deliberately grep-level: a float
# literal adjacent to ==/!= is the high-signal case.
FLOAT_LITERAL = r"(?<![\w.])(?:\d+\.\d*|\.\d+|\d+\.?\d*[eE][-+]?\d+)(?![\w.])"
FLOAT_EQ = re.compile(
    rf"{FLOAT_LITERAL}\s*[!=]=|[!=]=\s*{FLOAT_LITERAL}")
ZERO_LITERAL = re.compile(
    rf"(?<![\w.])0+\.0*(?:[eE][-+]?\d+)?\s*[!=]=|[!=]=\s*(?<![\w.])0+\.0*(?:[eE][-+]?\d+)?(?![\w.])")
WAIVER = re.compile(r"//\s*conv-ok:\s*([A-Z0-9-]+(?:\s*,\s*[A-Z0-9-]+)*)")

# UNIT-1..4: raw-double declarations with dimension vocabulary in their
# identifier. The name is split on underscores and each token matched
# exactly, so `max_rate` and `delay_bound` fire while `separate` and
# `accelerated` do not. The character after the declarator classifies it:
# '(' opens a function (UNIT-3), ',' / ')' ends a parameter (UNIT-1),
# ';' / '=' / '{' ends a field (UNIT-2). A bare end-of-line is treated as
# a wrapped parameter list (the common clang-format break).
UNIT_VOCAB = frozenset({
    "rate", "rates", "delay", "delays", "power", "powers",
    "freq", "freqs", "frequency", "frequencies",
    "energy", "energies", "watt", "watts", "joule", "joules",
})
DOUBLE_DECL = re.compile(r"(?<![\w:<.>])double\s+(\w+)\s*(.?)")
VECTOR_DOUBLE_DECL = re.compile(
    r"std::vector<\s*double\s*>\s*(?:const\s+)?[&*]?\s*(\w+)\s*(.?)")

UNIT_MESSAGES = {
    "UNIT-1": ("raw double parameter '{name}' carries a dimension: take a "
               "cpm::units quantity (units::Rate, units::Seconds, "
               "units::Watts, ...) or waive a genuine scalar"),
    "UNIT-2": ("raw double field '{name}' carries a dimension: store a "
               "cpm::units quantity or waive a genuine scalar"),
    "UNIT-3": ("'{name}' returns a raw double that carries a dimension: "
               "return a cpm::units quantity or waive a genuine scalar"),
    "UNIT-4": ("'{name}' is a vector<double> with a dimension name: use "
               "std::vector of a cpm::units quantity, or waive it where "
               "the raw-container boundary policy applies"),
}


# Frequency tokens are excluded from the CONTAINER rule only: the repo's
# frequency vectors are normalized DVFS operating points (f / f_base, a
# dimensionless speedup multiplier), the optimizers' decision-variable
# representation. Scalar `double freq`-style declarations still fire.
UNIT_VECTOR_EXEMPT = frozenset({"freq", "freqs", "frequency", "frequencies"})


def dimension_named(name: str, exempt: frozenset = frozenset()) -> bool:
    toks = name.lower().split("_")
    return (any(tok in UNIT_VOCAB for tok in toks)
            and not any(tok in exempt for tok in toks))


def unit_violations(path: Path, lineno: int, code: str) -> list["Violation"]:
    out = []
    for m in VECTOR_DOUBLE_DECL.finditer(code):
        name = m.group(1)
        if dimension_named(name, UNIT_VECTOR_EXEMPT):
            out.append(Violation(path, lineno, "UNIT-4",
                                 UNIT_MESSAGES["UNIT-4"].format(name=name)))
    # Blank vector<double> spans so DOUBLE_DECL cannot re-match inside them.
    scalar_view = VECTOR_DOUBLE_DECL.sub(lambda m: " " * len(m.group(0)),
                                         code)
    for m in DOUBLE_DECL.finditer(scalar_view):
        name, after = m.group(1), m.group(2)
        if not dimension_named(name):
            continue
        if after == "(":
            rule = "UNIT-3"
        elif after in {";", "=", "{"}:
            rule = "UNIT-2"
        else:  # ',' / ')' / wrapped parameter list
            rule = "UNIT-1"
        out.append(Violation(path, lineno, rule,
                             UNIT_MESSAGES[rule].format(name=name)))
    return out

# Registry for SARIF rule metadata: id -> short description.
RULE_HELP = {
    "CONV-1": "No rand()/srand() in library code",
    "CONV-2": "No stream output in library code",
    "CONV-3": "Headers start with #pragma once",
    "CONV-4": "No using-namespace in headers",
    "CONV-5": "No exact ==/!= on doubles in library code",
    "CONV-6": "No assert() in library code",
    "DET-1": "No std::random_device in library code",
    "DET-2": "No wall-clock reads in library code",
    "DET-3": "No environment reads in library code",
    "DET-4": "No iteration over unordered containers in library code",
    "DET-5": "No pointer-address formatting or hashing in library code",
    "IO-1": "No raw file streams/handles in library code — use the "
            "cpm::FileSystem seam",
    "IO-2": "No raw filesystem mutation in library code — use the "
            "cpm::FileSystem seam",
    "UNIT-1": "Dimension-named double parameters in src/ headers use "
              "cpm::units",
    "UNIT-2": "Dimension-named double fields in src/ headers use cpm::units",
    "UNIT-3": "Dimension-named functions in src/ headers return cpm::units "
              "quantities",
    "UNIT-4": "Dimension-named vector<double> in src/ headers uses "
              "cpm::units (or a boundary-policy waiver)",
}


def waived(raw_line: str, rule: str) -> bool:
    """Waivers live in comments, so they are matched on the RAW line."""
    m = WAIVER.search(raw_line)
    return bool(m) and rule in re.split(r"\s*,\s*", m.group(1))


def conv5_violates(line: str) -> bool:
    """True when the line compares a non-zero float literal with == / !=."""
    if not FLOAT_EQ.search(line):
        return False
    # Allow when every float-literal comparison on the line is against 0.0.
    stripped = ZERO_LITERAL.sub("", line)
    return bool(FLOAT_EQ.search(stripped))


class Violation:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def unordered_names(code_lines: list[str]) -> set[str]:
    """Identifiers declared as unordered containers anywhere in the file."""
    names = set()
    for line in code_lines:
        for m in UNORDERED_DECL.finditer(line):
            names.add(m.group(1))
    return names


def lint_file(path: Path, in_library: bool) -> list[Violation]:
    text = path.read_text(encoding="utf-8")
    is_header = path.suffix == ".hpp"
    raw_lines = text.splitlines()
    code_lines, nocomment_lines = source_views(text)
    violations = []
    if is_header and "#pragma once" not in text:
        violations.append(
            Violation(path, 1, "CONV-3", "header lacks #pragma once"))

    unordered = unordered_names(code_lines) if in_library else set()
    io_sanctioned = path.as_posix().endswith(IO_SANCTIONED_SUFFIXES)

    for lineno, raw in enumerate(raw_lines, start=1):
        code = code_lines[lineno - 1]
        nocomment = nocomment_lines[lineno - 1]
        for rule, library_only, headers_only, view, pattern, message in RULES:
            if library_only and not in_library:
                continue
            if headers_only and not is_header:
                continue
            if rule.startswith("IO-") and io_sanctioned:
                continue
            subject = code if view == "code" else nocomment
            if pattern.search(subject) and not waived(raw, rule):
                violations.append(Violation(path, lineno, rule, message))
        if in_library and conv5_violates(code) and not waived(raw, "CONV-5"):
            violations.append(Violation(
                path, lineno, "CONV-5",
                "exact ==/!= on a double: use a tolerance "
                "(or waive with // conv-ok: CONV-5)"))
        if in_library and unordered and not waived(raw, "DET-4"):
            iterated = {m.group(1) for m in RANGE_FOR.finditer(code)}
            iterated |= {m.group(1) for m in BEGIN_CALL.finditer(code)}
            if iterated & unordered:
                violations.append(Violation(path, lineno, "DET-4",
                                            DET4_MESSAGE))
        if in_library and is_header:
            # UNIT waivers may sit on the declaration line or on the doc
            # comment immediately above it (the house style for fields).
            prev_raw = raw_lines[lineno - 2] if lineno >= 2 else ""
            violations.extend(
                v for v in unit_violations(path, lineno, code)
                if not (waived(raw, v.rule) or waived(prev_raw, v.rule)))
    return violations


# ---------------------------------------------------------------------------
# Output
# ---------------------------------------------------------------------------


def to_sarif(violations: list[Violation], root: Path) -> dict:
    rules = [{
        "id": rule_id,
        "shortDescription": {"text": short},
        "defaultConfiguration": {"level": "error"},
    } for rule_id, short in sorted(RULE_HELP.items())]
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    results = []
    for v in violations:
        try:
            uri = str(v.path.resolve().relative_to(root.resolve()))
        except ValueError:
            uri = str(v.path)
        results.append({
            "ruleId": v.rule,
            "ruleIndex": rule_index[v.rule],
            "level": "error",
            "message": {"text": v.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": {"startLine": v.line},
                }
            }],
        })
    return {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                    "master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "lint_cpp",
                    "informationUri":
                        "https://example.invalid/cpm/tools/lint_cpp.py",
                    "rules": rules,
                }
            },
            "results": results,
        }],
    }


def changed_files(root: Path) -> list[Path] | None:
    """Files changed vs. git HEAD (staged, unstaged and untracked), or None
    when git is unavailable — the caller falls back to a full scan."""
    try:
        diff = subprocess.run(
            ["git", "-C", str(root), "diff", "--name-only", "HEAD", "--"],
            capture_output=True, text=True, check=True).stdout
        untracked = subprocess.run(
            ["git", "-C", str(root), "ls-files", "--others",
             "--exclude-standard"],
            capture_output=True, text=True, check=True).stdout
    except (OSError, subprocess.CalledProcessError):
        return None
    out = []
    for rel in sorted(set(diff.splitlines()) | set(untracked.splitlines())):
        p = root / rel
        if p.is_file():
            out.append(p)
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Repo-convention and determinism linter for C++ sources")
    parser.add_argument("root", nargs="?", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--format", choices=("text", "sarif"),
                        default="text")
    parser.add_argument("--out", default=None,
                        help="write the report here instead of stdout")
    parser.add_argument("--changed-only", action="store_true",
                        help="lint only files changed vs. git HEAD (plus "
                             "untracked); falls back to a full scan when "
                             "git is unavailable")
    args = parser.parse_args(argv)

    root = Path(args.root) if args.root else Path(__file__).parent.parent
    scopes = (("src", True), ("tools", False), ("tests", False))
    candidates: list[tuple[Path, bool]] = []
    changed = changed_files(root) if args.changed_only else None
    if changed is not None:
        for path in changed:
            if path.suffix not in (".cpp", ".hpp"):
                continue
            rel = path.relative_to(root)
            for top, in_library in scopes:
                if rel.parts and rel.parts[0] == top:
                    candidates.append((path, in_library))
                    break
    else:
        for top, in_library in scopes:
            for path in sorted(root.glob(f"{top}/**/*.[ch]pp")):
                candidates.append((path, in_library))

    violations: list[Violation] = []
    for path, in_library in candidates:
        violations.extend(lint_file(path, in_library))

    if args.format == "sarif":
        report = json.dumps(to_sarif(violations, root), indent=2) + "\n"
    else:
        report = "".join(v.render() + "\n" for v in violations)
        report += f"lint_cpp: {len(violations)} violation(s)\n"
    if args.out:
        Path(args.out).write_text(report, encoding="utf-8")
        if args.format == "text":
            sys.stdout.write(report)
    else:
        sys.stdout.write(report)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
