#!/usr/bin/env python3
"""Repo-convention linter for the C++ sources (the cheap, grep-level
checks clang-tidy does not cover). Enforced rules:

  CONV-1  library code (src/**) must not use rand()/srand(): every random
          draw goes through cpm::RandomStream so replications are
          reproducible and independent.
  CONV-2  library code (src/**) must not write to std::cout/std::cerr:
          libraries return values and throw cpm::Error; only tools/ and
          tests/ talk to streams.
  CONV-3  every header must start its include guard with #pragma once.
  CONV-4  headers must not contain using-namespace directives (they leak
          into every includer).

Usage: tools/lint_cpp.py [root]    (root defaults to the repo root)
Exit code 0 when clean, 1 when any violation is found.
"""
import re
import sys
from pathlib import Path

RULES = [
    # (id, applies-to-library-sources-only, headers-only, regex, message)
    ("CONV-1", True, False, re.compile(r"\b(?:s?rand)\s*\("),
     "rand()/srand() in library code: use cpm::RandomStream"),
    ("CONV-2", True, False, re.compile(r"\bstd::c(?:out|err)\b"),
     "stream output in library code: return values or throw cpm::Error"),
    ("CONV-4", False, True, re.compile(r"^\s*using\s+namespace\b"),
     "using-namespace in a header leaks into every includer"),
]

CODE_LINE = re.compile(r"^\s*(?://|\*|/\*)")  # comment-only lines


def lint_file(path: Path, in_library: bool) -> list[str]:
    text = path.read_text(encoding="utf-8")
    is_header = path.suffix == ".hpp"
    errors = []
    if is_header and "#pragma once" not in text:
        errors.append(f"{path}:1: [CONV-3] header lacks #pragma once")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if CODE_LINE.match(line):
            continue
        for rule, library_only, headers_only, pattern, message in RULES:
            if library_only and not in_library:
                continue
            if headers_only and not is_header:
                continue
            if pattern.search(line):
                errors.append(f"{path}:{lineno}: [{rule}] {message}")
    return errors


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent.parent
    errors = []
    for pattern, in_library in (("src/**/*.[ch]pp", True),
                                ("tools/**/*.[ch]pp", False),
                                ("tests/**/*.[ch]pp", False)):
        for path in sorted(root.glob(pattern)):
            errors.extend(lint_file(path, in_library))
    for error in errors:
        print(error)
    print(f"lint_cpp: {len(errors)} violation(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
