#!/usr/bin/env python3
"""Turn gcov counters into an lcov trace and gate line coverage.

After a CPM_COVERAGE build has run its tests, every object directory under
the build tree holds .gcda counter files. This script feeds each of them to
`gcov --json-format --stdout`, merges the per-line execution counts by
source file, writes a standard lcov tracefile (SF/DA/LF/LH records — the
artifact CI uploads, consumable by genhtml and coverage viewers) and fails
when the aggregate line coverage of the gated subtree drops below the
threshold.

Usage:
  coverage_gate.py --build-dir build-coverage --out coverage.info \
      --gate src/online --gate src/sweep:90 --min-percent 85

--gate is repeatable and takes PREFIX or PREFIX:MINPCT; a gate without its
own threshold uses --min-percent. Every gate must pass.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from collections import defaultdict


def find_gcda(build_dir: str) -> list[str]:
    hits = []
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                hits.append(os.path.join(root, name))
    return sorted(hits)


def gcov_json(gcda: str, gcov: str) -> dict:
    """One gcov invocation, JSON on stdout (gcc >= 9)."""
    out = subprocess.run(
        [gcov, "--json-format", "--stdout", gcda],
        check=True,
        capture_output=True,
    ).stdout
    return json.loads(out)


def merge_counts(
    reports: list[dict], repo_root: str
) -> dict[str, dict[int, int]]:
    """path (repo-relative) -> line -> max hit count across objects.

    The same header shows up in many translation units; a line counts as
    covered if ANY unit executed it, hence max-merge rather than sum (sums
    would also be fine for the gate but inflate the artifact).
    """
    counts: dict[str, dict[int, int]] = defaultdict(dict)
    for report in reports:
        for f in report.get("files", []):
            path = os.path.realpath(
                os.path.join(report.get("current_working_directory", "."),
                             f["file"])
            )
            if not path.startswith(repo_root + os.sep):
                continue  # system headers, gtest, ...
            rel = os.path.relpath(path, repo_root)
            per_line = counts[rel]
            for line in f.get("lines", []):
                n = line["line_number"]
                per_line[n] = max(per_line.get(n, 0), line["count"])
    return counts


def write_lcov(counts: dict[str, dict[int, int]], out_path: str) -> None:
    with open(out_path, "w", encoding="utf-8") as out:
        out.write("TN:cpm\n")
        for path in sorted(counts):
            per_line = counts[path]
            out.write(f"SF:{path}\n")
            for line in sorted(per_line):
                out.write(f"DA:{line},{per_line[line]}\n")
            covered = sum(1 for c in per_line.values() if c > 0)
            out.write(f"LF:{len(per_line)}\n")
            out.write(f"LH:{covered}\n")
            out.write("end_of_record\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", required=True)
    parser.add_argument("--out", default="coverage.info")
    parser.add_argument("--gate", action="append", default=None,
                        metavar="PREFIX[:MINPCT]",
                        help="repo-relative prefix whose coverage is gated; "
                             "repeatable; PREFIX:MINPCT overrides "
                             "--min-percent for that prefix "
                             "(default: src/online)")
    parser.add_argument("--min-percent", type=float, default=85.0)
    parser.add_argument("--gcov", default=os.environ.get("GCOV", "gcov"))
    args = parser.parse_args()

    repo_root = os.path.realpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir)
    )
    gcda_files = find_gcda(args.build_dir)
    if not gcda_files:
        print(f"coverage_gate: no .gcda files under {args.build_dir} "
              "(build with -DCPM_COVERAGE=ON and run the tests first)",
              file=sys.stderr)
        return 2

    reports = [gcov_json(g, args.gcov) for g in gcda_files]
    counts = merge_counts(reports, repo_root)
    write_lcov(counts, args.out)
    print(f"coverage_gate: lcov trace written to {args.out} "
          f"({len(counts)} files)")

    gates = []
    for spec in (args.gate or ["src/online"]):
        prefix, sep, minpct = spec.partition(":")
        if sep:
            try:
                threshold = float(minpct)
            except ValueError:
                print(f"coverage_gate: bad gate spec {spec!r}",
                      file=sys.stderr)
                return 2
        else:
            threshold = args.min_percent
        gates.append((prefix.rstrip("/"), threshold))

    failed = []
    for prefix, threshold in gates:
        gate = prefix + "/"
        gated_total = 0
        gated_covered = 0
        for path, per_line in sorted(counts.items()):
            if not path.startswith(gate):
                continue
            total = len(per_line)
            covered = sum(1 for c in per_line.values() if c > 0)
            gated_total += total
            gated_covered += covered
            pct = 100.0 * covered / total if total else 100.0
            print(f"  {path}: {covered}/{total} lines ({pct:.1f}%)")

        if gated_total == 0:
            print(f"coverage_gate: no instrumented lines under {prefix}",
                  file=sys.stderr)
            return 2
        pct = 100.0 * gated_covered / gated_total
        print(f"coverage_gate: {prefix} line coverage "
              f"{gated_covered}/{gated_total} = {pct:.2f}% "
              f"(minimum {threshold:.2f}%)")
        if pct < threshold:
            failed.append(prefix)

    if failed:
        print(f"coverage_gate: FAIL — below the minimum: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
