#!/usr/bin/env python3
"""Kill-and-resume chaos harness for cpmctl's journaled sweeps.

Proves the crash-safety contract of `cpmctl sweep run --journal/--resume`
end to end, with real SIGKILLs:

  1. A golden (uninterrupted, cache-disabled) run of the spec records the
     expected output bytes — per shard, and merged when sharded.
  2. For each seeded kill point, a fresh journaled run is launched and
     SIGKILLed after a randomized delay drawn from the harness seed. The
     surviving journal is parsed (checksummed lines only) to count the
     work that provably reached disk.
  3. The run is resumed with --resume until it completes (a resumed run
     may be killed again at later kill points' discretion — here each
     kill point resumes once, uninterrupted, which is the property the
     acceptance gate pins).

Assertions, per kill point:
  * the final output file is byte-identical to the golden run's;
  * zero journaled work is recomputed: the resumed run's stats sidecar
    reports exactly as many `restored` points as the journal held valid
    point records at kill time;
  * sharded mode: `cpmctl sweep merge` over the resumed shards is
    byte-identical to the golden merged document.

The kill schedule is a pure function of --seed, so a failure reproduces
exactly. Exit 0 when every kill point passes, 1 otherwise.

Usage:
  tools/chaos_run.py --cpmctl build/tools/cpmctl \\
      --spec examples/sweeps/e4_energy.json \\
      --kill-points 20 --shards 2 --seed 7 [--workdir DIR] [--verbose]
"""
import argparse
import hashlib
import json
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path


def log(msg: str) -> None:
    print(f"chaos_run: {msg}", flush=True)


def run_cpmctl(cpmctl: str, args: list[str], cwd: Path) -> None:
    """Runs cpmctl to completion; raises on nonzero exit."""
    proc = subprocess.run([cpmctl, *args], cwd=cwd,
                          capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"cpmctl {' '.join(args)} exited {proc.returncode}:\n"
            f"{proc.stdout}{proc.stderr}")


def run_and_kill(cpmctl: str, args: list[str], cwd: Path,
                 delay: float) -> bool:
    """Launches cpmctl and SIGKILLs it after `delay` seconds. Returns True
    when the kill landed while the process was still running."""
    proc = subprocess.Popen([cpmctl, *args], cwd=cwd,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    try:
        proc.wait(timeout=delay)
        return False  # finished before the kill point
    except subprocess.TimeoutExpired:
        proc.send_signal(signal.SIGKILL)
        proc.wait()
        return True


def valid_journal_points(path: Path) -> int:
    """Unique valid point records in a journal (header excluded). Mirrors
    the library's framing: `sum16 <compact-json>` per non-blank line, where
    sum16 is the first 16 hex digits of the payload's SHA-256. Torn or
    corrupt lines are skipped, exactly as RunJournal::replay drops them."""
    if not path.exists():
        return 0
    indexes = set()
    header_seen = False
    for line in path.read_bytes().decode("utf-8", "replace").split("\n"):
        if not line:
            continue
        if len(line) < 18 or line[16] != " ":
            continue
        payload = line[17:]
        digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
        if digest != line[:16]:
            continue
        try:
            record = json.loads(payload)
        except ValueError:
            continue
        if not header_seen:
            header_seen = True  # first valid record is the run header
            continue
        if isinstance(record, dict) and "index" in record:
            indexes.add(record["index"])
    return len(indexes)


def read_stats(path: Path) -> dict:
    return json.loads(path.read_text(encoding="utf-8"))


def shard_flags(shard: int, shards: int) -> list[str]:
    return ["--shard", f"{shard}/{shards}"] if shards > 1 else []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="SIGKILL/resume chaos harness for cpmctl sweeps")
    parser.add_argument("--cpmctl", required=True,
                        help="path to the cpmctl binary")
    parser.add_argument("--spec", required=True, help="sweep spec JSON")
    parser.add_argument("--kill-points", type=int, default=20)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a fresh tempdir)")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    cpmctl = str(Path(args.cpmctl).resolve())
    spec = str(Path(args.spec).resolve())
    if args.workdir:
        work = Path(args.workdir).resolve()
        if work.exists():
            shutil.rmtree(work)
        work.mkdir(parents=True)
        cleanup = None
    else:
        cleanup = tempfile.TemporaryDirectory(prefix="chaos_run.")
        work = Path(cleanup.name)

    rng = random.Random(args.seed)
    shards = max(1, args.shards)
    base = ["sweep", "run", spec, "--no-cache"]

    # Golden pass: expected bytes and a wall-clock scale for kill delays.
    t0 = time.monotonic()
    for s in range(1, shards + 1):
        run_cpmctl(cpmctl, base + shard_flags(s, shards) +
                   ["--out", f"gold_{s}.json"], work)
    wall = max(time.monotonic() - t0, 0.01) / shards
    golden = {s: (work / f"gold_{s}.json").read_bytes()
              for s in range(1, shards + 1)}
    if shards > 1:
        run_cpmctl(cpmctl, ["sweep", "merge", "gold_merged.json"] +
                   [f"gold_{s}.json" for s in range(1, shards + 1)], work)
        golden_merged = (work / "gold_merged.json").read_bytes()
    log(f"golden run: {shards} shard(s), ~{wall:.3f} s/shard")

    failures = 0
    kills_landed = 0
    for k in range(args.kill_points):
        point_dir = work / f"kill_{k:03d}"
        point_dir.mkdir()
        # One randomized kill delay per shard, drawn from the seeded
        # stream regardless of whether the kill lands, so the schedule
        # stays a pure function of (seed, kill index, shard).
        for s in range(1, shards + 1):
            out = f"run_{s}.json"
            journal = f"run_{s}.journal"
            flags = shard_flags(s, shards)
            delay = rng.uniform(0.2, 1.1) * wall
            killed = run_and_kill(
                cpmctl, base + flags + ["--out", out, "--journal", journal],
                point_dir, delay)
            if killed:
                kills_landed += 1
            journaled = valid_journal_points(point_dir / journal)
            run_cpmctl(cpmctl, base + flags +
                       ["--out", out, "--journal", journal, "--resume"],
                       point_dir)
            stats = read_stats(point_dir / f"{out}.stats.json")
            ok = True
            if (point_dir / out).read_bytes() != golden[s]:
                log(f"FAIL kill {k} shard {s}: output differs from golden")
                ok = False
            if stats["restored"] != journaled:
                log(f"FAIL kill {k} shard {s}: {journaled} journaled "
                    f"points but {stats['restored']} restored "
                    "(journaled work was recomputed or lost)")
                ok = False
            if stats["computed"] + stats["restored"] != stats["shard_points"]:
                log(f"FAIL kill {k} shard {s}: computed {stats['computed']} "
                    f"+ restored {stats['restored']} != owned "
                    f"{stats['shard_points']}")
                ok = False
            if not ok:
                failures += 1
            elif args.verbose:
                log(f"kill {k} shard {s}: killed={killed} "
                    f"journaled={journaled} restored={stats['restored']} "
                    f"computed={stats['computed']} -> identical")
        if shards > 1:
            run_cpmctl(cpmctl, ["sweep", "merge", "merged.json"] +
                       [f"run_{s}.json" for s in range(1, shards + 1)],
                       point_dir)
            if (point_dir / "merged.json").read_bytes() != golden_merged:
                log(f"FAIL kill {k}: merged document differs from golden")
                failures += 1

    log(f"{args.kill_points} kill point(s), {kills_landed} kill(s) landed "
        f"mid-run, {failures} failure(s)")
    if cleanup is not None:
        cleanup.cleanup()
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
