#!/usr/bin/env python3
"""Unit tests for tools/lint_cpp.py: per-rule trigger, near-miss and
waiver-canary cases, plus regressions for the comment/string stripper
(rules must not fire on prose inside comments or string literals).

Run directly (python3 tools/test_lint_cpp.py) or through ctest
(lint_cpp_unit_tests).
"""
import json
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
import lint_cpp  # noqa: E402


def lint_src(code: str, *, header: bool = False,
             in_library: bool = True) -> list[str]:
    """Lints a snippet as a library source (or header) file; returns rule
    ids of the violations found."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / ("snippet.hpp" if header else "snippet.cpp")
        if header and "#pragma once" not in code:
            code = "#pragma once\n" + code
        path.write_text(code, encoding="utf-8")
        return [v.rule for v in lint_cpp.lint_file(path, in_library)]


class StripViewsTest(unittest.TestCase):
    def test_line_comment_is_blanked(self):
        code, _ = lint_cpp.source_views("int x;  // std::cout << x;\n")
        self.assertNotIn("cout", code[0])
        self.assertIn("int x;", code[0])

    def test_block_comment_spans_lines(self):
        text = "int a;\n/* rand()\n   rand() */ int b;\n"
        code, _ = lint_cpp.source_views(text)
        self.assertNotIn("rand", "".join(code))
        self.assertIn("int b;", code[2])

    def test_string_contents_blanked_in_code_view(self):
        code, nocomment = lint_cpp.source_views(
            'const char* s = "std::cout is banned";\n')
        self.assertNotIn("cout", code[0])
        self.assertIn("cout", nocomment[0])  # literals survive there

    def test_escaped_quote_does_not_end_string(self):
        code, _ = lint_cpp.source_views('auto s = "a\\"b rand() c"; f();\n')
        self.assertNotIn("rand", code[0])
        self.assertIn("f();", code[0])

    def test_char_literal_blanked_but_digit_separator_kept(self):
        code, _ = lint_cpp.source_views("char c = ';'; int n = 1'000'000;\n")
        self.assertIn("1'000'000", code[0])
        self.assertNotIn("= ';';", code[0].replace("char c =  ' ' ;", ""))

    def test_raw_string_blanked_in_code_view(self):
        code, _ = lint_cpp.source_views(
            'auto s = R"(getenv("HOME") rand())"; g();\n')
        self.assertNotIn("rand", code[0])
        self.assertNotIn("getenv", code[0])
        self.assertIn("g();", code[0])

    def test_views_preserve_line_count_and_columns(self):
        text = 'int a; /* x */ int b = 1; // tail\n"s";\n'
        code, nocomment = lint_cpp.source_views(text)
        raw = text.splitlines()
        self.assertEqual(len(code), len(raw) + 1)  # trailing empty line
        for view in (code, nocomment):
            for i, line in enumerate(raw):
                self.assertEqual(len(view[i]), len(line))
        self.assertEqual(code[0].index("int b"), text.index("int b"))


class ConvRulesTest(unittest.TestCase):
    def test_conv1_trigger_and_comment_near_miss(self):
        self.assertIn("CONV-1", lint_src("int f() { return rand(); }\n"))
        self.assertEqual([], lint_src("int f();  // uses rand() internally\n"))

    def test_conv2_trigger_and_string_near_miss(self):
        self.assertIn("CONV-2", lint_src('void f() { std::cout << 1; }\n'))
        # The historical false positive: "std::cout" inside a literal.
        self.assertEqual(
            [], lint_src('const char* kDoc = "never use std::cout";\n'))

    def test_conv2_does_not_apply_outside_library(self):
        self.assertEqual(
            [], lint_src("void f() { std::cout << 1; }\n", in_library=False))

    def test_conv3_header_without_pragma_once(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "h.hpp"
            path.write_text("int x;\n", encoding="utf-8")
            rules = [v.rule for v in lint_cpp.lint_file(path, True)]
        self.assertIn("CONV-3", rules)

    def test_conv4_trigger_and_comment_near_miss(self):
        self.assertIn("CONV-4",
                      lint_src("using namespace std;\n", header=True))
        self.assertEqual(
            [], lint_src("// using namespace std; (never do this)\n",
                         header=True))

    def test_conv5_trigger_zero_allowed_and_waiver(self):
        self.assertIn("CONV-5", lint_src("bool f(double x) { return x == 1.5; }\n"))
        self.assertEqual([], lint_src("bool f(double x) { return x == 0.0; }\n"))
        self.assertEqual(
            [], lint_src("bool f(double x) { return x == 1.5; }"
                         "  // conv-ok: CONV-5\n"))

    def test_conv6_trigger_and_member_near_miss(self):
        self.assertIn("CONV-6", lint_src("void f(int n) { assert(n > 0); }\n"))
        self.assertEqual([], lint_src("void f() { model.assert_valid(); }\n"))
        self.assertEqual([], lint_src("void f() { self.assert(1); }\n"))


class Det1Test(unittest.TestCase):
    def test_trigger(self):
        self.assertIn("DET-1",
                      lint_src("std::random_device rd; auto s = rd();\n"))

    def test_near_miss_identifier_and_comment(self):
        self.assertEqual([], lint_src("int my_random_device_count = 0;\n"))
        self.assertEqual([], lint_src("// std::random_device is banned\n"))

    def test_waiver_canary(self):
        bad = "std::random_device rd;\n"
        self.assertIn("DET-1", lint_src(bad))
        self.assertEqual(
            [], lint_src("std::random_device rd;  // conv-ok: DET-1\n"))

    def test_out_of_scope_in_tests(self):
        self.assertEqual([], lint_src("std::random_device rd;\n",
                                      in_library=False))


class Det2Test(unittest.TestCase):
    def test_trigger_system_clock(self):
        self.assertIn("DET-2", lint_src(
            "auto t = std::chrono::system_clock::now();\n"))

    def test_trigger_time_nullptr(self):
        self.assertIn("DET-2", lint_src("auto t = std::time(nullptr);\n"))
        self.assertIn("DET-2", lint_src("long t = time(0);\n"))

    def test_near_miss_steady_clock(self):
        # steady_clock is the provenance-duration clock and stays legal.
        self.assertEqual([], lint_src(
            "auto t = std::chrono::steady_clock::now();\n"))

    def test_near_miss_identifiers(self):
        self.assertEqual([], lint_src("double elapsed_time(int x);\n"))
        self.assertEqual([], lint_src("double t = sim.time();\n"))

    def test_waiver_canary(self):
        self.assertEqual([], lint_src(
            "auto t = std::chrono::system_clock::now();  // conv-ok: DET-2\n"))


class Det3Test(unittest.TestCase):
    def test_trigger(self):
        self.assertIn("DET-3",
                      lint_src('const char* v = std::getenv("HOME");\n'))
        self.assertIn("DET-3", lint_src('const char* v = getenv("HOME");\n'))

    def test_near_miss_identifier_and_string(self):
        self.assertEqual([], lint_src("int cpm_getenv_calls = 0;\n"))
        self.assertEqual([], lint_src('const char* kDoc = "getenv(HOME)";\n'))

    def test_waiver_canary(self):
        self.assertEqual([], lint_src(
            'const char* v = std::getenv("X");  // conv-ok: DET-3\n'))

    def test_out_of_scope_in_tools(self):
        self.assertEqual([], lint_src('const char* v = getenv("HOME");\n',
                                      in_library=False))


class Det4Test(unittest.TestCase):
    DECL = "std::unordered_map<std::string, double> totals;\n"

    def test_trigger_range_for(self):
        code = self.DECL + "void f() { for (const auto& kv : totals) {} }\n"
        self.assertIn("DET-4", lint_src(code))

    def test_trigger_begin_iterator(self):
        code = self.DECL + "auto it = totals.begin();\n"
        self.assertIn("DET-4", lint_src(code))

    def test_trigger_unordered_set(self):
        code = ("std::unordered_set<int> seen;\n"
                "void f() { for (int v : seen) {} }\n")
        self.assertIn("DET-4", lint_src(code))

    def test_near_miss_insert_and_lookup_only(self):
        # The replication-seeds pattern: insert/count but never iterate.
        code = (self.DECL +
                "void f() { totals.emplace(\"a\", 1.0); totals.count(\"a\"); }\n")
        self.assertEqual([], lint_src(code))

    def test_near_miss_ordered_map(self):
        code = ("std::map<std::string, double> totals;\n"
                "void f() { for (const auto& kv : totals) {} }\n")
        self.assertEqual([], lint_src(code))

    def test_waiver_canary(self):
        code = (self.DECL +
                "void f() { for (const auto& kv : totals) {} "
                "// conv-ok: DET-4\n}\n")
        self.assertEqual([], lint_src(code))


class Det5Test(unittest.TestCase):
    def test_trigger_pointer_hash(self):
        self.assertIn("DET-5", lint_src(
            "std::size_t h = std::hash<const Job*>{}(job);\n"))

    def test_trigger_void_cast(self):
        self.assertIn("DET-5", lint_src(
            "oss << static_cast<const void*>(ptr);\n"))

    def test_trigger_uintptr(self):
        self.assertIn("DET-5", lint_src(
            "auto key = reinterpret_cast<std::uintptr_t>(ptr);\n"))

    def test_trigger_percent_p_format(self):
        self.assertIn("DET-5", lint_src(
            'snprintf(buf, sizeof buf, "job at %p", (void*)job);\n'))

    def test_near_miss_string_hash_and_percent(self):
        self.assertEqual([], lint_src(
            "std::size_t h = std::hash<std::string>{}(key);\n"))
        self.assertEqual([], lint_src(
            'auto s = format("%prefix", prefix);\n'))  # %p must be a word

    def test_near_miss_percent_p_in_comment(self):
        self.assertEqual([], lint_src("// never print %p in results\n"))

    def test_waiver_canary(self):
        self.assertEqual([], lint_src(
            "oss << static_cast<const void*>(ptr);  // conv-ok: DET-5\n"))


class UnitRulesTest(unittest.TestCase):
    def test_unit1_parameter_trigger(self):
        self.assertIn("UNIT-1", lint_src(
            "void set_bound(double delay_bound);\n", header=True))
        self.assertIn("UNIT-1", lint_src(
            "void observe(double arrival_rate, int k);\n", header=True))

    def test_unit1_scalar_freq_still_fires(self):
        # Only the CONTAINER rule exempts frequency tokens.
        self.assertIn("UNIT-1", lint_src(
            "void tune(double freq);\n", header=True))

    def test_unit2_field_trigger(self):
        self.assertIn("UNIT-2", lint_src(
            "struct S { double max_power = 0.0; };\n", header=True))

    def test_unit3_return_trigger(self):
        self.assertIn("UNIT-3", lint_src(
            "double mean_delay() const;\n", header=True))

    def test_unit4_vector_trigger(self):
        self.assertIn("UNIT-4", lint_src(
            "std::vector<double> rates;\n", header=True))

    def test_unit4_frequency_vector_exempt(self):
        # Normalized DVFS operating points are dimensionless multipliers.
        self.assertEqual([], lint_src(
            "std::vector<double> frequencies;\n", header=True))

    def test_near_miss_vocab_must_be_a_token(self):
        # "rate" inside "separate"/"iterate" is not dimension vocabulary.
        self.assertEqual([], lint_src(
            "double separate = 0.0;\n", header=True))
        self.assertEqual([], lint_src(
            "void f(double iterate);\n", header=True))

    def test_near_miss_dimensionless_name(self):
        self.assertEqual([], lint_src(
            "double utilization = 0.0;\n", header=True))

    def test_out_of_scope_sources_and_tools(self):
        # UNIT rules govern src/ public headers only.
        self.assertEqual([], lint_src("double mean_delay() const;\n"))
        self.assertEqual([], lint_src(
            "struct S { double max_power = 0.0; };\n",
            header=True, in_library=False))

    def test_waiver_on_the_line(self):
        self.assertEqual([], lint_src(
            "struct S { double rate_smoothing = 0.5; "
            "};  // conv-ok: UNIT-2\n", header=True))

    def test_waiver_on_preceding_doc_comment(self):
        self.assertEqual([], lint_src(
            "/// EWMA weight, dimensionless. // conv-ok: UNIT-2\n"
            "double rate_smoothing = 0.5;\n", header=True))

    def test_waiver_for_other_rule_does_not_apply(self):
        self.assertIn("UNIT-4", lint_src(
            "std::vector<double> rates;  // conv-ok: UNIT-2\n", header=True))


class IoRulesTest(unittest.TestCase):
    def test_io1_ofstream_trigger(self):
        self.assertIn("IO-1", lint_src("std::ofstream out(path);\n"))

    def test_io1_ifstream_trigger(self):
        self.assertIn("IO-1", lint_src("std::ifstream in(path);\n"))

    def test_io1_fopen_trigger(self):
        self.assertIn("IO-1", lint_src('auto* f = std::fopen(p, "rb");\n'))

    def test_io1_bare_fopen_trigger(self):
        self.assertIn("IO-1", lint_src('FILE* f = fopen(p, "rb");\n'))

    def test_io2_rename_trigger(self):
        self.assertIn("IO-2", lint_src("std::filesystem::rename(a, b);\n"))

    def test_io2_alias_triggers(self):
        ids = lint_src("stdfs::remove(p);\nfs::create_directories(d);\n")
        self.assertEqual(ids.count("IO-2"), 2)

    def test_io2_c_rename_trigger(self):
        self.assertIn("IO-2", lint_src("std::rename(tmp, path);\n"))

    def test_near_miss_prose_and_member_calls(self):
        self.assertEqual([], lint_src(
            'const char* kDoc = "std::ofstream is banned";\n'
            "void create_directories(const std::string& p) override;\n"
            "inner_.remove(path);\n"
            "int transfstream = 0;\n"))

    def test_out_of_scope_tools_and_tests(self):
        self.assertEqual([], lint_src("std::ofstream f(p);\n",
                                      in_library=False))

    def test_sanctioned_seam_file_exempt(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "src" / "common" / "src" / "fs.cpp"
            path.parent.mkdir(parents=True)
            path.write_text('std::FILE* f = std::fopen(p, "rb");\n'
                            "std::rename(tmp2, path2);\n", encoding="utf-8")
            rules = [v.rule for v in lint_cpp.lint_file(path, True)]
        self.assertEqual([], rules)

    def test_waiver_canary(self):
        self.assertEqual([], lint_src(
            "std::ofstream f(p);  // conv-ok: IO-1\n"))


class WaiverMechanismTest(unittest.TestCase):
    def test_comma_separated_waivers(self):
        line = ("bool f(double x) { assert(x == 1.5); return true; }"
                "  // conv-ok: CONV-5, CONV-6\n")
        self.assertEqual([], lint_src(line))

    def test_waiver_for_other_rule_does_not_apply(self):
        self.assertIn("CONV-6", lint_src(
            "void f(int n) { assert(n > 0); }  // conv-ok: CONV-5\n"))


class SarifOutputTest(unittest.TestCase):
    def test_sarif_document_shape(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            (root / "src" / "x").mkdir(parents=True)
            (root / "src" / "x" / "bad.cpp").write_text(
                "int f() { return rand(); }\n", encoding="utf-8")
            out = root / "report.sarif"
            rc = lint_cpp.main([str(root), "--format", "sarif",
                                "--out", str(out)])
            self.assertEqual(rc, 1)
            doc = json.loads(out.read_text(encoding="utf-8"))
        self.assertEqual(doc["version"], "2.1.0")
        run = doc["runs"][0]
        self.assertEqual(run["tool"]["driver"]["name"], "lint_cpp")
        self.assertEqual(len(run["results"]), 1)
        result = run["results"][0]
        self.assertEqual(result["ruleId"], "CONV-1")
        self.assertEqual(
            result["locations"][0]["physicalLocation"]["region"]["startLine"],
            1)
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        self.assertEqual(rule_ids, set(lint_cpp.RULE_HELP))

    def test_clean_tree_exits_zero(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            (root / "src").mkdir()
            (root / "src" / "ok.cpp").write_text("int f() { return 1; }\n",
                                                 encoding="utf-8")
            rc = lint_cpp.main([str(root)])
        self.assertEqual(rc, 0)


if __name__ == "__main__":
    unittest.main()
