// cpmctl — command-line front end for the cpm library.
//
// Drives the paper's four capabilities against a cluster model described
// in JSON (schema: src/core/include/cpm/core/model_io.hpp):
//
//   cpmctl example-model                         write a starter model JSON
//   cpmctl describe       <model.json>           model summary
//   cpmctl evaluate       <model.json> [--freq f1,f2,..] [--p95]
//   cpmctl optimize-delay <model.json> --budget WATTS [--levels N]
//   cpmctl optimize-power <model.json> --bound SECONDS [--per-class b1,b2,..]
//                                      [--levels N]
//   cpmctl size           <model.json> [--max-servers N] [--greedy]
//   cpmctl simulate       <model.json> [--time T] [--warmup W|auto]
//                                      [--reps N] [--seed S]
//                                      [--journal FILE] [--resume]
//   cpmctl validate       <model.json> [--reps N]
//   cpmctl check          <model.json> [--reps N] [--seed S] [--random N]
//                                      [--analytic-only]
//   cpmctl lint           <model.json> [--format text|json|sarif]
//                                      [--error-on note|warning|error]
//                                      [--rule LIST] [--no-rule LIST]
//                                      [--warmup W --time T --reps N]
//   cpmctl lint --list-rules
//   cpmctl online         <model.json> --scenario <scenario.json>
//                                      [--seed S] [--out FILE] [--summary]
//   cpmctl certify        <model.json> [--box ranges.json] [--bisect-depth N]
//                                      [--max-boxes N] [--format text|json|sarif]
//                                      [--error-on note|warning|error]
//                                      [--rule LIST] [--no-rule LIST]
//                                      [--solution size|power ...]
//   cpmctl sweep run      <spec.json>  [--out FILE] [--cache DIR] [--no-cache]
//                                      [--shard K/N] [--threads N] [--audit]
//                                      [--salt S] [--journal FILE] [--resume]
//                                      [--fault-plan plan.json]
//   cpmctl sweep merge    <out.json> <shard.json>...
//   cpmctl sweep stat     [--cache DIR]
//
// Exit status taxonomy (pinned by ctests; see docs/resilience.md):
//   0  success
//   1  usage error
//   2  model/solver error (for `check`: any invariant violated)
//   3  `lint`/`certify`: diagnostics at or above the --error-on threshold
//   4  transient I/O failure persisted through the retry budget
//      (IoErrorKind::kTransient, e.g. injected EIO on every attempt)
//   5  permanent I/O failure (IoErrorKind::kPermanent: missing file,
//      EACCES, ENOSPC)
//   6  corrupt input (IoErrorKind::kCorrupt: unparseable JSON input,
//      resume journal from a different run)
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cpm/bench/suites.hpp"
#include "cpm/certify/certificate.hpp"
#include "cpm/check/differential.hpp"
#include "cpm/common/fs.hpp"
#include "cpm/common/hash.hpp"
#include "cpm/core/cpm.hpp"
#include "cpm/core/model_io.hpp"
#include "cpm/lint/analyze.hpp"
#include "cpm/lint/render.hpp"
#include "cpm/online/timeline.hpp"
#include "cpm/resilience/fault_plan.hpp"
#include "cpm/resilience/faulting_fs.hpp"
#include "cpm/resilience/journal.hpp"
#include "cpm/resilience/retry.hpp"
#include "cpm/sim/warmup.hpp"
#include "cpm/sweep/runner.hpp"
#include "cpm/workload/trace.hpp"

namespace {

using namespace cpm;

[[noreturn]] void usage(const std::string& message = "") {
  if (!message.empty()) std::cerr << "error: " << message << "\n\n";
  std::cerr <<
      "usage: cpmctl <command> [args]\n"
      "  example-model                         print a starter model JSON\n"
      "  describe       <model.json>\n"
      "  evaluate       <model.json> [--freq f1,f2,..] [--p95]\n"
      "  optimize-delay <model.json> --budget WATTS [--levels N]\n"
      "  optimize-power <model.json> --bound SECS [--per-class b1,..] [--levels N]\n"
      "  size           <model.json> [--max-servers N] [--greedy]\n"
      "  simulate       <model.json> [--time T] [--warmup W|auto] [--reps N] [--seed S]\n"
      "                 [--trace-class NAME --trace-file arrivals.csv]\n"
      "                 [--journal FILE] [--resume]\n"
      "  validate       <model.json> [--reps N]\n"
      "  check          <model.json> [--reps N] [--seed S] [--random N]\n"
      "                 [--analytic-only]\n"
      "  lint           <model.json> [--format text|json|sarif]\n"
      "                 [--error-on note|warning|error] [--rule LIST]\n"
      "                 [--no-rule LIST] [--warmup W --time T --reps N]\n"
      "  lint           --list-rules\n"
      "  online         <model.json> --scenario <scenario.json> [--seed S]\n"
      "                 [--out FILE] [--summary]\n"
      "  certify        <model.json> [--box ranges.json] [--bisect-depth N]\n"
      "                 [--max-boxes N] [--format text|json|sarif]\n"
      "                 [--error-on note|warning|error] [--rule LIST]\n"
      "                 [--no-rule LIST] [--solution size|power]\n"
      "                 [--max-servers N] [--greedy] [--bound SECS]\n"
      "  trace-stats    <arrivals.csv>\n"
      "  bench          [--suite NAME] [--quick] [--repeats N] [--warmup N]\n"
      "                 [--out FILE] [--list]\n"
      "  sweep run      <spec.json> [--out FILE] [--cache DIR] [--no-cache]\n"
      "                 [--shard K/N] [--threads N] [--audit] [--salt S]\n"
      "                 [--journal FILE] [--resume] [--fault-plan plan.json]\n"
      "  sweep merge    <out.json> <shard.json>...\n"
      "  sweep stat     [--cache DIR]\n";
  std::exit(1);
}

std::string read_file(const std::string& path) {
  return real_filesystem().read(path);
}

/// Parses a top-level JSON input file. A file that reads fine but fails
/// to parse is classified kCorrupt (exit 6), distinct from the
/// kPermanent failure of a missing/unreadable file (exit 5).
Json parse_json_file(const std::string& path) {
  const std::string text = read_file(path);
  try {
    return Json::parse(text);
  } catch (const Error& e) {
    throw IoError(IoErrorKind::kCorrupt,
                  "corrupt input '" + path + "': " + e.what());
  }
}

/// All cpmctl artifact publishes go through the I/O seam: atomic
/// tmp-then-rename write with bounded-backoff retry on transient errors.
void write_text_file(const std::string& path, const std::string& text) {
  resilience::with_retry(resilience::RetryPolicy{}, "write '" + path + "'",
                         [&] { real_filesystem().write_atomic(path, text); });
}

std::vector<double> parse_csv_doubles(const std::string& text) {
  std::vector<double> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    out.push_back(std::stod(item));
  }
  return out;
}

/// Tiny flag scanner: --name value pairs plus bare flags.
class Args {
 public:
  Args(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) tokens_.emplace_back(argv[i]);
  }

  [[nodiscard]] std::optional<std::string> value(const std::string& flag) const {
    for (std::size_t i = 0; i + 1 < tokens_.size(); ++i)
      if (tokens_[i] == flag) return tokens_[i + 1];
    return std::nullopt;
  }

  [[nodiscard]] bool has(const std::string& flag) const {
    for (const auto& t : tokens_)
      if (t == flag) return true;
    return false;
  }

  [[nodiscard]] double number(const std::string& flag, double fallback) const {
    const auto v = value(flag);
    return v ? std::stod(*v) : fallback;
  }

 private:
  std::vector<std::string> tokens_;
};

core::ClusterModel load_model(const std::string& path) {
  return core::model_from_json(parse_json_file(path));
}

std::vector<double> frequencies_for(const core::ClusterModel& model,
                                    const Args& args) {
  const auto flag = args.value("--freq");
  if (!flag) return model.max_frequencies();
  auto f = parse_csv_doubles(*flag);
  if (f.size() != model.num_tiers())
    throw Error("--freq needs one value per tier (" +
                std::to_string(model.num_tiers()) + ")");
  return f;
}

void print_frequencies(const std::vector<double>& f) {
  std::cout << "frequencies:";
  for (double fi : f) std::cout << ' ' << format_double(fi, 3);
  std::cout << '\n';
}

int cmd_example_model() {
  const auto model = core::make_enterprise_model(0.6);
  std::cout << core::model_to_json(model).dump(2) << '\n';
  return 0;
}

int cmd_describe(const std::string& path) {
  const auto model = load_model(path);
  print_banner(std::cout, "tiers");
  Table tiers({"tier", "servers", "discipline", "cost", "idle W", "busy W",
               "alpha", "DVFS"});
  for (const auto& t : model.tiers()) {
    tiers.row()
        .add(t.name)
        .add(t.servers)
        .add(queueing::discipline_name(t.discipline))
        .add(t.server_cost, 2)
        .add(t.power.idle_power().value(), 1)
        .add((t.power.idle_power() + t.power.dynamic_power(t.power.dvfs().f_base))
                 .value(),
             1)
        .add(t.power.alpha(), 1);
    std::string dvfs_range = "[";
    dvfs_range += format_double(t.power.dvfs().f_min.value(), 2);
    dvfs_range += ", ";
    dvfs_range += format_double(t.power.dvfs().f_max.value(), 2);
    dvfs_range += "]";
    tiers.add(dvfs_range);
  }
  tiers.print(std::cout);

  print_banner(std::cout, "classes (priority order)");
  Table classes({"class", "rate", "SLA mean delay", "route"});
  for (const auto& c : model.classes()) {
    std::string route;
    for (const auto& d : c.route) {
      if (!route.empty()) route += " -> ";
      route += model.tiers()[static_cast<std::size_t>(d.tier)].name;
    }
    classes.row()
        .add(c.name)
        .add(c.rate.value(), 3)
        .add(c.sla.mean_bounded() ? format_double(c.sla.max_mean_e2e_delay.value(), 3) : "-")
        .add(route);
  }
  classes.print(std::cout);
  return 0;
}

int cmd_evaluate(const std::string& path, const Args& args) {
  const auto model = load_model(path);
  const auto f = frequencies_for(model, args);
  const auto ev = model.evaluate(f);
  if (!ev.stable) {
    std::cerr << "model is UNSTABLE at these frequencies\n";
    return 2;
  }
  print_frequencies(f);
  const bool p95 = args.has("--p95");
  std::vector<std::string> headers = {"class", "E2E delay s", "energy/req J"};
  if (p95) headers.insert(headers.begin() + 2, "p95 delay s");
  Table t(std::move(headers));
  for (std::size_t k = 0; k < model.num_classes(); ++k) {
    t.row().add(model.classes()[k].name).add(ev.net.e2e_delay[k].value());
    if (p95) t.add(queueing::percentile_e2e_delay(ev.net, k, 0.95).value());
    t.add(ev.energy.per_request_energy[k].value(), 2);
  }
  t.print(std::cout);
  std::cout << "mean E2E delay: " << format_double(ev.net.mean_e2e_delay.value())
            << " s\ncluster power:  " << format_double(ev.energy.cluster_avg_power.value(), 1)
            << " W\n";
  Table u({"tier", "utilization"});
  for (std::size_t s = 0; s < model.num_tiers(); ++s)
    u.row().add(model.tiers()[s].name).add(ev.net.station_utilization[s]);
  u.print(std::cout);
  return 0;
}

int cmd_optimize_delay(const std::string& path, const Args& args) {
  const auto model = load_model(path);
  const auto budget = args.value("--budget");
  if (!budget) usage("optimize-delay requires --budget WATTS");
  const double watts = std::stod(*budget);
  const int levels = static_cast<int>(args.number("--levels", 0));
  const auto r = levels > 0
                     ? core::minimize_delay_with_power_budget_discrete(model, units::watts(watts),
                                                                       levels)
                     : core::minimize_delay_with_power_budget(model, units::watts(watts));
  if (!r.feasible) {
    std::cerr << "infeasible: no stable operating point fits " << watts << " W\n";
    return 2;
  }
  print_frequencies(r.frequencies);
  std::cout << "mean E2E delay: " << format_double(r.mean_delay.value()) << " s\n"
            << "cluster power:  " << format_double(r.power.value(), 1) << " W (budget "
            << format_double(watts, 1) << ")\n";
  return 0;
}

int cmd_optimize_power(const std::string& path, const Args& args) {
  const auto model = load_model(path);
  const int levels = static_cast<int>(args.number("--levels", 0));
  core::FrequencyOptResult r;
  if (const auto per_class = args.value("--per-class")) {
    const auto raw_bounds = parse_csv_doubles(*per_class);
    if (raw_bounds.size() != model.num_classes())
      throw Error("--per-class needs one bound per class");
    std::vector<units::Seconds> bounds;
    for (double b : raw_bounds) bounds.push_back(units::seconds(b));
    r = core::minimize_power_with_class_delay_bounds(model, bounds);
  } else {
    const auto bound = args.value("--bound");
    if (!bound) usage("optimize-power requires --bound SECONDS (or --per-class)");
    const double secs = std::stod(*bound);
    r = levels > 0
            ? core::minimize_power_with_delay_bound_discrete(model, units::seconds(secs), levels)
            : core::minimize_power_with_delay_bound(model, units::seconds(secs));
  }
  if (!r.feasible) {
    std::cerr << "infeasible: the delay bound cannot be met even at f_max\n";
    return 2;
  }
  print_frequencies(r.frequencies);
  std::cout << "cluster power:  " << format_double(r.power.value(), 1) << " W\n"
            << "mean E2E delay: " << format_double(r.mean_delay.value()) << " s\n";
  for (std::size_t k = 0; k < model.num_classes(); ++k)
    std::cout << "  " << model.classes()[k].name << ": "
              << format_double(r.evaluation.net.e2e_delay[k].value()) << " s\n";
  return 0;
}

int cmd_size(const std::string& path, const Args& args) {
  const auto model = load_model(path);
  core::CostOptOptions opts;
  opts.max_servers_per_tier = static_cast<int>(args.number("--max-servers", 24));
  opts.greedy_only = args.has("--greedy");
  const auto r = core::minimize_cost_for_slas(model, opts);
  if (!r.feasible) {
    std::cerr << "infeasible: SLAs unreachable with <= " << opts.max_servers_per_tier
              << " servers per tier\n";
    return 2;
  }
  Table t({"tier", "servers", "unit cost", "cost"});
  for (std::size_t i = 0; i < model.num_tiers(); ++i) {
    t.row()
        .add(model.tiers()[i].name)
        .add(r.servers[i])
        .add(model.tiers()[i].server_cost, 2)
        .add(model.tiers()[i].server_cost * r.servers[i], 2);
  }
  t.print(std::cout);
  std::cout << "total cost: " << format_double(r.total_cost, 2) << "  ("
            << r.nodes_explored << " feasibility probes)\n";
  for (std::size_t k = 0; k < model.num_classes(); ++k) {
    const auto& c = model.classes()[k];
    std::cout << "  " << c.name << ": delay "
              << format_double(r.evaluation.net.e2e_delay[k].value()) << " s"
              << (c.sla.mean_bounded()
                      ? " (SLA " + format_double(c.sla.max_mean_e2e_delay.value(), 3) + ")"
                      : "")
              << '\n';
  }
  return 0;
}

/// RepSummary <-> journal JSON. Doubles are dumped with full precision
/// (%.17g) so a restored summary is bit-identical to the one simulated.
Json summary_to_json(const sim::RepSummary& s) {
  JsonObject o;
  JsonArray classes;
  for (const auto& c : s.classes) {
    JsonObject cj;
    cj["mean_delay"] = c.mean_e2e_delay.value();
    cj["p95_delay"] = c.p95_e2e_delay.value();
    cj["mean_energy"] = c.mean_e2e_energy.value();
    cj["blocking"] = c.blocking_probability;
    cj["completed"] = static_cast<double>(c.completed);
    cj["blocked"] = static_cast<double>(c.blocked);
    classes.emplace_back(std::move(cj));
  }
  o["classes"] = Json(std::move(classes));
  o["mean_delay"] = s.mean_e2e_delay.value();
  o["power"] = s.cluster_avg_power.value();
  JsonArray util;
  for (double u : s.station_utilization) util.emplace_back(u);
  o["utilization"] = Json(std::move(util));
  o["events"] = static_cast<double>(s.events_fired);
  return Json(std::move(o));
}

sim::RepSummary summary_from_json(const Json& j) {
  sim::RepSummary s;
  for (const auto& cj : j.at("classes").as_array()) {
    sim::RepClassSummary c;
    c.mean_e2e_delay = units::seconds(cj.at("mean_delay").as_number());
    c.p95_e2e_delay = units::seconds(cj.at("p95_delay").as_number());
    c.mean_e2e_energy = units::joules(cj.at("mean_energy").as_number());
    c.blocking_probability = cj.at("blocking").as_number();
    c.completed = static_cast<std::uint64_t>(cj.at("completed").as_number());
    c.blocked = static_cast<std::uint64_t>(cj.at("blocked").as_number());
    s.classes.push_back(c);
  }
  s.mean_e2e_delay = units::seconds(j.at("mean_delay").as_number());
  s.cluster_avg_power = units::watts(j.at("power").as_number());
  for (const auto& u : j.at("utilization").as_array())
    s.station_utilization.push_back(u.as_number());
  s.events_fired = static_cast<std::uint64_t>(j.at("events").as_number());
  return s;
}

int cmd_simulate(const std::string& path, const Args& args) {
  const auto model = load_model(path);
  const auto f = frequencies_for(model, args);
  const double end_time = args.number("--time", 1000.0);
  const auto seed = static_cast<std::uint64_t>(args.number("--seed", 20110516.0));
  const int reps = static_cast<int>(args.number("--reps", 8));

  const auto warmup_flag = args.value("--warmup");
  double warmup = end_time * 0.1;
  if (warmup_flag && *warmup_flag != "auto") warmup = std::stod(*warmup_flag);
  if (warmup_flag && *warmup_flag == "auto") {
    const auto pilot = model.to_sim_config(f, 0.0, end_time, seed);
    const auto est = sim::pilot_warmup(pilot);
    warmup = est.warmup_time;
    std::cout << "MSER-5 pilot: warm-up " << format_double(warmup, 2) << " (deleted "
              << est.deleted_jobs << "/" << est.total_jobs << " completions)\n";
  }

  sim::ReplicationOptions rep;
  rep.replications = reps;
  auto cfg = model.to_sim_config(f, warmup, warmup + end_time, seed);

  // Optional exact trace replay for one class.
  std::string trace_sum;
  std::string trace_cls;
  if (const auto trace_class = args.value("--trace-class")) {
    const auto trace_file = args.value("--trace-file");
    if (!trace_file) usage("--trace-class requires --trace-file");
    const std::string trace_text = read_file(*trace_file);
    const auto trace = workload::ArrivalTrace::parse_csv(trace_text);
    bool found = false;
    for (auto& cls : cfg.classes) {
      if (cls.name != *trace_class) continue;
      cls.arrival_times = trace.timestamps();
      cls.rate = units::per_second(0.0);
      found = true;
    }
    if (!found) throw Error("no class named '" + *trace_class + "'");
    trace_cls = *trace_class;
    trace_sum = sha256_hex(trace_text);
    // A trace is one sample path: replications would all replay it
    // identically on the arrival side, so run service-side variation only.
    std::cout << "replaying " << trace.stats().count << " arrivals from "
              << *trace_file << " for class " << *trace_class << '\n';
  }

  // Crash-safe resume: each finished replication's summary is appended
  // to the checksummed run journal; --resume replays the survivor and
  // skips the replications already on disk. The aggregate over restored
  // summaries is bit-identical to the uninterrupted run's.
  const auto journal_flag = args.value("--journal");
  const bool resume = args.has("--resume");
  if (resume && !journal_flag)
    usage("simulate --resume requires --journal FILE");
  std::unique_ptr<resilience::RunJournal> journal;
  std::vector<std::optional<sim::RepSummary>> restored(
      static_cast<std::size_t>(reps));
  if (journal_flag) {
    JsonObject fp;
    fp["model"] = core::model_to_json(model);
    JsonArray freqs;
    for (double fi : f) freqs.emplace_back(fi);
    fp["frequencies"] = Json(std::move(freqs));
    fp["time"] = end_time;
    fp["warmup"] = warmup;
    fp["seed"] = static_cast<double>(seed);
    fp["reps"] = static_cast<double>(reps);
    if (!trace_cls.empty()) {
      fp["trace_class"] = trace_cls;
      fp["trace_sum"] = trace_sum;
    }
    const std::string config_sum = sha256_hex(Json(std::move(fp)).dump());

    journal = std::make_unique<resilience::RunJournal>(real_filesystem(),
                                                       *journal_flag);
    bool have_survivor = false;
    if (resume) {
      const auto replay =
          resilience::RunJournal::replay(real_filesystem(), *journal_flag);
      if (replay.found && !replay.header.is_null()) {
        if (replay.header.string_or("schema", "") != "cpm-journal/v1" ||
            replay.header.string_or("kind", "") != "replicate" ||
            replay.header.string_or("config", "") != config_sum)
          throw IoError(IoErrorKind::kCorrupt,
                        "simulate resume: journal '" + *journal_flag +
                            "' belongs to a different run (header mismatch)");
        have_survivor = true;
        for (const auto& recj : replay.records) {
          const double idx = recj.number_or("rep", -1.0);
          if (idx < 0.0 || !recj.contains("summary")) continue;
          const auto i = static_cast<std::size_t>(idx);
          if (i < restored.size())
            restored[i] = summary_from_json(recj.at("summary"));
        }
      }
    }
    if (!have_survivor) {
      JsonObject hdr;
      hdr["schema"] = "cpm-journal/v1";
      hdr["kind"] = "replicate";
      hdr["config"] = config_sum;
      hdr["reps"] = static_cast<double>(reps);
      journal->begin(Json(std::move(hdr)));
    }
    rep.restore = [&restored](std::size_t i, sim::RepSummary& out) {
      if (i < restored.size() && restored[i]) {
        out = *restored[i];
        return true;
      }
      return false;
    };
    rep.checkpoint = [&journal](std::size_t i, const sim::RepSummary& s) {
      JsonObject recj;
      recj["rep"] = static_cast<double>(i);
      recj["summary"] = summary_to_json(s);
      journal->append(Json(std::move(recj)));
    };
  }

  const auto r = sim::replicate(cfg, rep);

  Table t({"class", "mean delay s", "+-CI", "p95 s", "energy J", "completed"});
  for (std::size_t k = 0; k < model.num_classes(); ++k) {
    t.row()
        .add(model.classes()[k].name)
        .add(r.classes[k].mean_e2e_delay.mean)
        .add(r.classes[k].mean_e2e_delay.half_width)
        .add(r.classes[k].p95_e2e_delay.mean)
        .add(r.classes[k].mean_e2e_energy.mean, 2)
        .add(static_cast<std::size_t>(r.classes[k].total_completed));
  }
  t.print(std::cout);
  std::cout << "mean E2E delay: " << format_double(r.mean_e2e_delay.mean) << " +- "
            << format_double(r.mean_e2e_delay.half_width) << " s\n"
            << "cluster power:  " << format_double(r.cluster_avg_power.mean, 1)
            << " +- " << format_double(r.cluster_avg_power.half_width, 1) << " W\n"
            << "(" << reps << " replications, " << r.total_events << " events";
  if (r.restored > 0)
    std::cout << ", " << r.restored << " restored from journal";
  std::cout << ")\n";
  return 0;
}

int cmd_validate(const std::string& path, const Args& args) {
  const auto model = load_model(path);
  core::SimSettings settings;
  settings.replications = static_cast<int>(args.number("--reps", 8));
  const auto report =
      core::validate_model(model, model.max_frequencies(), settings);
  Table t({"metric", "analytic", "simulated", "+-CI", "err %", "in CI"});
  for (const auto& row : report.rows) {
    t.row()
        .add(row.metric)
        .add(row.analytic)
        .add(row.simulated)
        .add(row.ci_half_width)
        .add(row.error_pct, 2)
        .add(row.within_ci ? "yes" : "no");
  }
  t.print(std::cout);
  std::cout << "worst error: " << format_double(report.max_error_pct, 2) << "%\n";
  return 0;
}

int cmd_check(const std::string& path, const Args& args) {
  const auto model = load_model(path);
  const auto frequencies = model.max_frequencies();

  check::Report report = check::check_analytic(model, frequencies);
  report.merge(check::check_reductions());
  if (!args.has("--analytic-only")) {
    check::CrossValidateOptions options;
    options.sim.replications = static_cast<int>(args.number("--reps", 8));
    options.sim.seed =
        static_cast<std::uint64_t>(args.number("--seed", 20110516));
    report.merge(check::cross_validate(model, frequencies, options));
  }
  const int random_models = static_cast<int>(args.number("--random", 0));
  if (random_models > 0) {
    const auto seed =
        static_cast<std::uint64_t>(args.number("--seed", 20110516));
    report.merge(check::sweep_random_models(seed, random_models));
  }

  const auto sci = [](double x) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2e", x);
    return std::string(buf);
  };
  Table t({"invariant", "status", "worst violation", "tolerance", "detail"});
  for (const auto& c : report.checks()) {
    t.row()
        .add(c.invariant)
        .add(c.passed ? "ok" : "VIOLATED")
        .add(sci(c.worst_violation))
        .add(sci(c.tolerance))
        .add(c.detail);
  }
  t.print(std::cout);
  std::cout << (report.all_passed() ? "all invariants hold\n"
                                    : "INVARIANT VIOLATION\n");
  return report.all_passed() ? 0 : 2;
}

std::vector<std::string> parse_csv_strings(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int cmd_online(const std::string& path, const Args& args) {
  const auto scenario_path = args.value("--scenario");
  if (!scenario_path) usage("online requires --scenario <scenario.json>");
  const auto model = load_model(path);
  auto scenario = online::scenario_from_json(parse_json_file(*scenario_path));
  if (const auto seed = args.value("--seed"))
    scenario.seed = static_cast<std::uint64_t>(std::stoull(*seed));

  const auto result = online::run_online(model, scenario);
  const std::string doc = result.timeline.dump(2);
  if (const auto out = args.value("--out")) {
    write_text_file(*out, doc + "\n");
  } else {
    std::cout << doc << '\n';
  }

  if (args.has("--summary")) {
    std::cerr << "windows: " << result.windows.size()
              << "  reoptimizations: " << result.reoptimizations
              << "  switching cost: " << result.switching_cost_joules.value()
              << " J\n";
    for (std::size_t k = 0; k < model.num_classes(); ++k) {
      const auto& c = result.sim.classes[k];
      std::cerr << "  " << model.classes()[k].name
                << ": completed " << c.completed << ", blocked " << c.blocked
                << ", mean delay " << c.mean_e2e_delay.value() << " s\n";
    }
  }
  return 0;
}

int cmd_lint_list_rules() {
  Table t({"id", "name", "severity", "description"});
  for (const auto& r : lint::rules())
    t.row().add(r.id).add(r.name).add(lint::severity_name(r.severity)).add(
        r.description);
  t.print(std::cout);
  return 0;
}

int cmd_lint(const std::string& path, const Args& args) {
  lint::RuleSet rules;
  if (const auto only = args.value("--rule"))
    rules = lint::RuleSet::only(parse_csv_strings(*only));
  if (const auto off = args.value("--no-rule"))
    for (const auto& id : parse_csv_strings(*off)) rules.disable(id);

  lint::LintReport report = lint::lint_text(read_file(path), rules);

  // Settings-scope rules run when the caller describes the run it plans
  // (the same flags `simulate` takes).
  if (args.value("--warmup") || args.value("--time") || args.value("--reps")) {
    core::SimSettings settings;
    settings.warmup_time = args.number("--warmup", settings.warmup_time);
    settings.end_time = args.number("--time", settings.end_time);
    settings.replications = static_cast<int>(
        args.number("--reps", static_cast<double>(settings.replications)));
    report.merge(lint::lint_sim_settings(settings, rules));
  }

  const lint::Severity threshold =
      lint::severity_from_name(args.value("--error-on").value_or("error"));
  const std::string format = args.value("--format").value_or("text");
  if (format == "text")
    std::cout << lint::render_text(report, path);
  else if (format == "json")
    std::cout << lint::render_json(report, path).dump(2) << '\n';
  else if (format == "sarif")
    std::cout << lint::render_sarif(report, path).dump(2) << '\n';
  else
    usage("unknown lint format '" + format + "' (expected text | json | sarif)");

  return report.count_at_least(threshold) > 0 ? 3 : 0;
}

int cmd_certify(const std::string& path, const Args& args) {
  const Json doc = parse_json_file(path);
  const auto model = core::model_from_json(doc);

  // Box precedence: --box file, then the model's embedded "certify" block
  // (the same convention lint uses for its "lint" suppression block), then
  // the degenerate nominal box.
  certify::BoxSpec box;
  if (const auto box_path = args.value("--box"))
    box = certify::box_from_json(model, parse_json_file(*box_path));
  else if (doc.contains("certify"))
    box = certify::box_from_json(model, doc.at("certify"));
  else
    box = certify::default_box(model);

  certify::CertifyOptions options;
  options.bisect_depth = static_cast<int>(
      args.number("--bisect-depth", options.bisect_depth));
  options.max_boxes =
      static_cast<int>(args.number("--max-boxes", options.max_boxes));
  if (const auto only = args.value("--rule"))
    options.rules = lint::RuleSet::only(parse_csv_strings(*only));
  if (const auto off = args.value("--no-rule"))
    for (const auto& id : parse_csv_strings(*off)) options.rules.disable(id);

  const lint::Severity threshold =
      lint::severity_from_name(args.value("--error-on").value_or("error"));
  const std::string format = args.value("--format").value_or("text");

  // Certificate mode: re-run an optimizer, then statically certify its
  // output over the box instead of the model as declared.
  if (const auto solution = args.value("--solution")) {
    certify::Certificate cert;
    if (*solution == "size") {
      core::CostOptOptions opts;
      opts.max_servers_per_tier =
          static_cast<int>(args.number("--max-servers", 24));
      opts.greedy_only = args.has("--greedy");
      const auto r = core::minimize_cost_for_slas(model, opts);
      cert = certify::certify_cost_solution(model, r, opts.frequencies, box,
                                            options);
    } else if (*solution == "power") {
      const auto bound = args.value("--bound");
      if (!bound) usage("certify --solution power requires --bound SECONDS");
      const auto r =
          core::minimize_power_with_delay_bound(model,
                                                units::seconds(std::stod(*bound)));
      cert = certify::certify_frequency_solution(model, r, box, options);
    } else {
      usage("unknown --solution '" + *solution + "' (expected size | power)");
    }

    if (format == "text") {
      std::cout << certify::render_certify_text(cert.report, path)
                << (cert.certified ? "solution CERTIFIED over the box\n"
                                   : "solution NOT CERTIFIED\n");
    } else if (format == "json") {
      std::cout << certify::certificate_to_json(cert, model, box).dump(2)
                << '\n';
    } else if (format == "sarif") {
      std::cout << lint::render_sarif(cert.report.diagnostics, path).dump(2)
                << '\n';
    } else {
      usage("unknown certify format '" + format +
            "' (expected text | json | sarif)");
    }
    return cert.report.diagnostics.count_at_least(threshold) > 0 ? 3 : 0;
  }

  const certify::CertifyReport report = certify::certify_model(model, box, options);
  if (format == "text")
    std::cout << certify::render_certify_text(report, path);
  else if (format == "json")
    std::cout << certify::render_certify_json(report, path, box, model).dump(2)
              << '\n';
  else if (format == "sarif")
    std::cout << lint::render_sarif(report.diagnostics, path).dump(2) << '\n';
  else
    usage("unknown certify format '" + format +
          "' (expected text | json | sarif)");

  return report.diagnostics.count_at_least(threshold) > 0 ? 3 : 0;
}

int cmd_bench(const Args& args) {
  if (args.has("--list")) {
    for (const auto& name : bench::suite_names()) std::cout << name << '\n';
    return 0;
  }
  const std::string suite = args.value("--suite").value_or("p1");
  bench::BenchOptions opt;
  opt.quick = args.has("--quick");
  if (opt.quick) opt.repeats = 3;  // CI smoke default; --repeats overrides
  opt.repeats = static_cast<int>(args.number("--repeats", opt.repeats));
  opt.warmup = static_cast<int>(args.number("--warmup", opt.warmup));
  const std::string out_path =
      args.value("--out").value_or("BENCH_" + suite + ".json");

  const auto result = bench::run_named_suite(suite, opt);

  Table t({"case", "wall s (median)", "IQR", "rates (median)"});
  for (const auto& c : result.cases) {
    std::string rates;
    for (const auto& [name, stats] : c.rates) {
      if (!rates.empty()) rates += "  ";
      rates += name + "=" + format_double(stats.median, 0);
    }
    t.row()
        .add(c.name)
        .add(c.wall_seconds.median, 4)
        .add(c.wall_seconds.iqr, 4)
        .add(rates);
  }
  t.print(std::cout);
  std::cout << "peak RSS: " << result.peak_rss_bytes / (1024 * 1024) << " MiB  ("
            << opt.repeats << " repeats, " << opt.warmup << " warmup"
            << (opt.quick ? ", quick" : "") << ")\n";

  write_text_file(out_path, bench::to_json(result).dump(2) + "\n");
  std::cout << "wrote " << out_path << '\n';
  return 0;
}

std::string dir_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

sweep::CacheOptions sweep_cache_options(const Args& args) {
  sweep::CacheOptions cache;
  if (const auto dir = args.value("--cache")) cache.directory = *dir;
  if (const auto salt = args.value("--salt")) cache.engine_salt = *salt;
  if (args.has("--no-cache")) cache.enabled = false;
  return cache;
}

int cmd_sweep_run(const std::string& spec_path, const Args& args) {
  auto spec = sweep::spec_from_json_text(read_file(spec_path), dir_of(spec_path));
  if (args.has("--audit")) {
    // The audit flag participates in the cache key: audited and
    // unaudited results differ, so they must not share entries.
    JsonObject pipeline = spec.pipeline.as_object();
    pipeline["audit"] = Json(true);
    spec.pipeline = Json(std::move(pipeline));
  }

  sweep::RunOptions options;
  options.cache = sweep_cache_options(args);
  options.threads = static_cast<unsigned>(args.number("--threads", 0));
  if (const auto shard = args.value("--shard"))
    options.shard = sweep::shard_from_string(*shard);

  std::string out_path;
  if (const auto out = args.value("--out")) {
    out_path = *out;
  } else {
    out_path = "SWEEP_" + spec.name;
    if (options.shard.count > 1)
      out_path += ".shard-" + std::to_string(options.shard.index) + "-of-" +
                  std::to_string(options.shard.count);
    out_path += ".json";
  }

  // Fault injection: wrap the real filesystem so cache and journal
  // traffic flows through a deterministic FaultingFileSystem (drives the
  // chaos harness and the negative-path exit-code ctests).
  std::unique_ptr<resilience::FaultingFileSystem> faulting;
  if (const auto plan_path = args.value("--fault-plan")) {
    const auto plan =
        resilience::fault_plan_from_json(parse_json_file(*plan_path));
    faulting = std::make_unique<resilience::FaultingFileSystem>(
        real_filesystem(), plan);
    options.cache.fs = faulting.get();
  }

  if (const auto j = args.value("--journal"))
    options.journal_path = *j;
  else if (args.has("--resume"))
    options.journal_path = out_path + ".journal";
  options.resume = args.has("--resume");

  const auto r = sweep::run_sweep(spec, options);

  write_text_file(out_path, r.document.dump(2) + "\n");
  write_text_file(out_path + ".stats.json",
                  sweep::stats_to_json(r.stats).dump(2) + "\n");

  const double hit_pct =
      r.stats.shard_points == 0
          ? 0.0
          : 100.0 * static_cast<double>(r.stats.cache_hits) /
                static_cast<double>(r.stats.shard_points);
  std::cout << "sweep " << spec.name << ": " << r.stats.total_points
            << " points";
  if (options.shard.count > 1)
    std::cout << " (shard " << options.shard.index << "/"
              << options.shard.count << ": " << r.stats.shard_points
              << " owned)";
  std::cout << ", " << r.stats.computed << " computed, " << r.stats.cache_hits
            << " cached (" << format_double(hit_pct, 1) << "% hit rate), "
            << format_double(r.stats.wall_seconds, 2) << " s, "
            << r.stats.threads_used << " thread(s)\n";
  if (!options.journal_path.empty())
    std::cout << "journal " << options.journal_path << ": " << r.stats.restored
              << " restored, " << r.stats.journal_dropped
              << " dropped line(s)\n";
  if (faulting != nullptr)
    std::cout << "fault plan: " << faulting->injected() << " fault(s) injected\n";
  std::cout << "wrote " << out_path << " and " << out_path << ".stats.json\n";
  return 0;
}

int cmd_sweep_merge(int argc, char** argv) {
  if (argc < 5) usage("sweep merge needs <out.json> and >= 1 shard document");
  const std::string out_path = argv[3];
  std::vector<Json> shards;
  for (int i = 4; i < argc; ++i) shards.push_back(parse_json_file(argv[i]));
  const Json merged = sweep::merge_shards(shards);
  write_text_file(out_path, merged.dump(2) + "\n");
  std::cout << "merged " << shards.size() << " shard(s), "
            << merged.at("points").size() << " points -> " << out_path << '\n';
  return 0;
}

int cmd_sweep_stat(const Args& args) {
  const sweep::ResultCache cache(sweep_cache_options(args));
  const auto stats = cache.stat();
  std::cout << "cache " << cache.options().directory << ": " << stats.entries
            << " entries, " << stats.bytes / 1024 << " KiB\n";
  if (stats.entries == 0) return 0;
  Table t({"pipeline", "entries"});
  for (const auto& [kind, n] : stats.by_pipeline)
    t.row().add(kind).add(n);
  t.print(std::cout);
  Table e({"engine salt", "entries"});
  for (const auto& [salt, n] : stats.by_engine) e.row().add(salt).add(n);
  e.print(std::cout);
  return 0;
}

int cmd_sweep(int argc, char** argv) {
  if (argc < 3) usage("sweep needs a subcommand: run | merge | stat");
  const std::string sub = argv[2];
  if (sub == "run") {
    if (argc < 4) usage("sweep run needs a spec file");
    return cmd_sweep_run(argv[3], Args(argc, argv, 4));
  }
  if (sub == "merge") return cmd_sweep_merge(argc, argv);
  if (sub == "stat") return cmd_sweep_stat(Args(argc, argv, 3));
  usage("unknown sweep subcommand '" + sub + "' (expected run | merge | stat)");
}

int cmd_trace_stats(const std::string& path) {
  const auto trace = workload::ArrivalTrace::parse_csv(read_file(path));
  const auto s = trace.stats();
  Table t({"metric", "value"});
  t.row().add("arrivals").add(s.count);
  t.row().add("duration").add(s.duration);
  t.row().add("mean rate /s").add(s.mean_rate.value());
  t.row().add("interarrival SCV").add(s.interarrival_scv);
  t.row().add("peak/mean (100 bins)").add(s.peak_to_mean);
  t.print(std::cout);
  if (s.interarrival_scv > 1.5)
    std::cout << "note: SCV >> 1 - this trace is bursty; Poisson-based\n"
                 "analytic results will be optimistic, prefer exact replay.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "example-model") return cmd_example_model();
    if (cmd == "bench") return cmd_bench(Args(argc, argv, 2));
    if (cmd == "trace-stats") {
      if (argc < 3) usage("trace-stats needs a CSV file");
      return cmd_trace_stats(argv[2]);
    }
    if (cmd == "lint" && argc >= 3 && std::string(argv[2]) == "--list-rules")
      return cmd_lint_list_rules();
    if (cmd == "sweep") return cmd_sweep(argc, argv);
    if (argc < 3) usage("command '" + cmd + "' needs a model file");
    const std::string path = argv[2];
    const Args args(argc, argv, 3);
    if (cmd == "lint") return cmd_lint(path, args);
    if (cmd == "certify") return cmd_certify(path, args);
    if (cmd == "describe") return cmd_describe(path);
    if (cmd == "evaluate") return cmd_evaluate(path, args);
    if (cmd == "optimize-delay") return cmd_optimize_delay(path, args);
    if (cmd == "optimize-power") return cmd_optimize_power(path, args);
    if (cmd == "size") return cmd_size(path, args);
    if (cmd == "simulate") return cmd_simulate(path, args);
    if (cmd == "validate") return cmd_validate(path, args);
    if (cmd == "check") return cmd_check(path, args);
    if (cmd == "online") return cmd_online(path, args);
    usage("unknown command '" + cmd + "'");
  } catch (const cpm::IoError& e) {
    std::cerr << "error: " << e.what() << '\n';
    switch (e.kind()) {
      case cpm::IoErrorKind::kTransient:
        return 4;
      case cpm::IoErrorKind::kPermanent:
        return 5;
      case cpm::IoErrorKind::kCorrupt:
        return 6;
    }
    return 5;
  } catch (const cpm::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
