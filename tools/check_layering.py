#!/usr/bin/env python3
"""Include-graph layering gate for the src/ subsystems.

The repo is grown as a stack of subsystems with a declared dependency
DAG (LAYERS below): common at the bottom; the math layers (opt,
queueing, workload, power) above it; the simulator; the core facade;
then the analysis/management layers (lint, certify, check, online);
and the orchestration layers (sweep, bench) on top. The gate parses
every `#include "cpm/<subsystem>/..."` edge in src/ and fails on:

  LAYER-1  an edge the declared DAG does not allow (either a brand-new
           dependency — declare it here deliberately, in review — or an
           inversion, e.g. queueing reaching up into core);
  LAYER-2  a cycle in the declared DAG itself (a bad declaration must
           not be able to "allow" mutual dependency);
  LAYER-3  a subsystem directory on disk that LAYERS does not mention
           (new subsystems must be placed in the stack explicitly).

The declared graph is the single source of truth; the checker never
infers permissions from the tree. Indirect reach stays transitive by
construction (allowing core -> sim does not allow sim -> core).

Usage: tools/check_layering.py [root] [--format text|sarif] [--out FILE]
       [--layers FILE.json]   (test override: {"sub": ["dep", ...], ...})
Exit code 0 when clean, 1 when any violation is found.
"""
import argparse
import json
import re
import sys
from pathlib import Path

# Declared DAG: subsystem -> subsystems it may include from. This is the
# architecture, not a measurement — check_layering_matches_tree in ctest
# keeps it honest against the real include graph.
LAYERS: dict[str, list[str]] = {
    "common": [],
    "resilience": ["common"],
    "opt": ["common"],
    "queueing": ["common"],
    "workload": ["common"],
    "power": ["common", "queueing"],
    "sim": ["common", "queueing", "workload"],
    "core": ["common", "opt", "power", "queueing", "sim"],
    "lint": ["common", "core"],
    "online": ["common", "core", "sim", "workload"],
    "certify": ["common", "core", "lint", "queueing"],
    "check": ["certify", "common", "core", "lint", "queueing", "sim"],
    "sweep": ["check", "common", "core", "online", "queueing",
              "resilience", "sim"],
    "bench": ["common", "core", "online"],
}

INCLUDE = re.compile(r'^\s*#\s*include\s+"cpm/([A-Za-z0-9_]+)/')

RULE_HELP = {
    "LAYER-1": "src/ include edges follow the declared subsystem DAG",
    "LAYER-2": "The declared subsystem graph is acyclic",
    "LAYER-3": "Every src/ subsystem is declared in the layering DAG",
}


class Violation:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def declared_cycle(layers: dict[str, list[str]]) -> list[str] | None:
    """Returns one cycle (as a node path) in the declared graph, or None."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {n: WHITE for n in layers}
    stack: list[str] = []

    def visit(n: str) -> list[str] | None:
        color[n] = GREY
        stack.append(n)
        for dep in layers.get(n, []):
            if dep not in layers:
                continue
            if color[dep] == GREY:
                return stack[stack.index(dep):] + [dep]
            if color[dep] == WHITE:
                found = visit(dep)
                if found:
                    return found
        stack.pop()
        color[n] = BLACK
        return None

    for n in sorted(layers):
        if color[n] == WHITE:
            found = visit(n)
            if found:
                return found
    return None


def check(root: Path, layers: dict[str, list[str]]) -> list[Violation]:
    src = root / "src"
    violations: list[Violation] = []

    cycle = declared_cycle(layers)
    if cycle:
        violations.append(Violation(
            src, 1, "LAYER-2",
            "declared layering graph has a cycle: " + " -> ".join(cycle)))

    subsystems = sorted(p.name for p in src.iterdir()
                        if p.is_dir() and not p.name.startswith("."))
    for sub in subsystems:
        if sub not in layers:
            violations.append(Violation(
                src / sub, 1, "LAYER-3",
                f"subsystem '{sub}' is not declared in the layering DAG: "
                "add it to LAYERS (tools/check_layering.py) at the right "
                "level"))

    for sub in subsystems:
        allowed = set(layers.get(sub, ())) | {sub}
        for path in sorted((src / sub).rglob("*.[ch]pp")):
            for lineno, line in enumerate(
                    path.read_text(encoding="utf-8").splitlines(), start=1):
                m = INCLUDE.match(line)
                if not m:
                    continue
                target = m.group(1)
                if target not in allowed:
                    direction = ("an inversion"
                                 if sub in set(layers.get(target, ()))
                                 else "undeclared")
                    violations.append(Violation(
                        path, lineno, "LAYER-1",
                        f"'{sub}' includes from '{target}' but the declared "
                        f"DAG does not allow that edge ({direction}); if the "
                        "dependency is intended, declare it in LAYERS"))
    return violations


def to_sarif(violations: list[Violation], root: Path) -> dict:
    rules = [{
        "id": rule_id,
        "shortDescription": {"text": short},
        "defaultConfiguration": {"level": "error"},
    } for rule_id, short in sorted(RULE_HELP.items())]
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    results = []
    for v in violations:
        try:
            uri = str(v.path.resolve().relative_to(root.resolve()))
        except ValueError:
            uri = str(v.path)
        results.append({
            "ruleId": v.rule,
            "ruleIndex": rule_index[v.rule],
            "level": "error",
            "message": {"text": v.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": {"startLine": v.line},
                }
            }],
        })
    return {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                    "master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "check_layering",
                    "informationUri":
                        "https://example.invalid/cpm/tools/check_layering.py",
                    "rules": rules,
                }
            },
            "results": results,
        }],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Enforce the declared include DAG across src/ "
                    "subsystems")
    parser.add_argument("root", nargs="?", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--format", choices=("text", "sarif"),
                        default="text")
    parser.add_argument("--out", default=None,
                        help="write the report here instead of stdout")
    parser.add_argument("--layers", default=None,
                        help="JSON file mapping subsystem -> allowed deps "
                             "(overrides the built-in DAG; for tests)")
    args = parser.parse_args(argv)

    root = Path(args.root) if args.root else Path(__file__).parent.parent
    layers = LAYERS
    if args.layers:
        layers = json.loads(Path(args.layers).read_text(encoding="utf-8"))

    violations = check(root, layers)

    if args.format == "sarif":
        report = json.dumps(to_sarif(violations, root), indent=2) + "\n"
    else:
        report = "".join(v.render() + "\n" for v in violations)
        report += f"check_layering: {len(violations)} violation(s)\n"
    if args.out:
        Path(args.out).write_text(report, encoding="utf-8")
        if args.format == "text":
            sys.stdout.write(report)
    else:
        sys.stdout.write(report)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
