#!/usr/bin/env python3
"""Compare a cpm-bench/v1 result against a checked-in baseline.

Used by the CI bench-smoke job to gate performance regressions:

    tools/bench_compare.py BENCH_p1.json bench/baseline.json --tolerance 0.30

For every case present in BOTH documents it compares
  * median wall_seconds   — regression when candidate > baseline * (1 + tol)
  * median *_per_sec rate — regression when candidate < baseline * (1 - tol)

Cases or rates present in only one document are reported as added/removed
but never fail the gate (adding or renaming a case must not need a
two-step dance), and a case with a missing or malformed metric is skipped
with a note rather than crashing the gate.
Exit status: 0 clean, 1 at least one regression, 2 malformed input.

The default tolerance is deliberately loose (30%): shared CI runners
jitter by tens of percent, and the gate exists to catch the 2x-5x cliffs
a bad data structure or an accidental debug build causes, not 5% drift.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    schema = doc.get("schema")
    if schema != "cpm-bench/v1":
        raise ValueError(f"{path}: unsupported schema {schema!r}")
    return doc


def cases_by_name(doc, path):
    cases = {}
    for c in doc.get("cases", []):
        name = c.get("name")
        if not isinstance(name, str):
            raise ValueError(f"{path}: case without a 'name'")
        cases[name] = c
    return cases


def median_of(case, *keys):
    """case[k0][k1]...["median"], or None when any level is absent."""
    node = case
    for key in (*keys, "median"):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node if isinstance(node, (int, float)) else None


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("candidate", help="fresh BENCH_<suite>.json to validate")
    ap.add_argument("baseline", help="checked-in reference document")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional slowdown before failing (default 0.30)",
    )
    args = ap.parse_args()
    if not 0.0 <= args.tolerance < 10.0:
        ap.error("--tolerance must be in [0, 10)")

    try:
        cand = cases_by_name(load(args.candidate), args.candidate)
        base = cases_by_name(load(args.baseline), args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"bench_compare: {exc}", file=sys.stderr)
        return 2

    regressions = []
    improvements = []

    def check(case, metric, cand_v, base_v, higher_is_worse):
        if base_v <= 0:
            return  # degenerate baseline sample; nothing meaningful to gate
        ratio = cand_v / base_v
        if higher_is_worse:
            bad = ratio > 1.0 + args.tolerance
            direction = "slower" if ratio > 1 else "faster"
            delta = abs(ratio - 1.0)
        else:
            bad = ratio < 1.0 - args.tolerance
            direction = "slower" if ratio < 1 else "faster"
            delta = abs(1.0 - ratio)
        line = (
            f"  {case}/{metric}: {cand_v:.6g} vs baseline {base_v:.6g} "
            f"({delta:.1%} {direction})"
        )
        if bad:
            regressions.append(line)
        elif delta > args.tolerance:
            improvements.append(line)

    removed = sorted(set(base) - set(cand))
    added = sorted(set(cand) - set(base))
    for name in removed:
        print(f"note: case '{name}' removed (in baseline only, skipped)")
    for name in added:
        print(f"note: case '{name}' added (no baseline yet, skipped)")

    for name in sorted(set(base) & set(cand)):
        c, b = cand[name], base[name]
        cand_wall = median_of(c, "wall_seconds")
        base_wall = median_of(b, "wall_seconds")
        if cand_wall is None or base_wall is None:
            print(f"note: case '{name}' has no wall_seconds median in one "
                  "document (skipped)")
        else:
            check(name, "wall_seconds.median", cand_wall, base_wall,
                  higher_is_worse=True)
        base_rates = b.get("rates", {})
        cand_rates = c.get("rates", {})
        for rate in sorted(base_rates):
            if not rate.endswith("_per_sec"):
                continue
            if rate not in cand_rates:
                print(f"note: rate '{name}/{rate}' missing from candidate (skipped)")
                continue
            cand_r = median_of(cand_rates, rate)
            base_r = median_of(base_rates, rate)
            if cand_r is None or base_r is None:
                print(f"note: rate '{name}/{rate}' has no median in one "
                      "document (skipped)")
                continue
            check(name, rate, cand_r, base_r, higher_is_worse=False)

    if added or removed:
        print(f"bench_compare: {len(added)} case(s) added, "
              f"{len(removed)} removed vs baseline")

    if improvements:
        print(f"improvements beyond {args.tolerance:.0%} (consider refreshing baseline):")
        print("\n".join(improvements))
    if regressions:
        print(f"PERFORMANCE REGRESSION (>{args.tolerance:.0%} vs baseline):")
        print("\n".join(regressions))
        return 1
    print(f"bench_compare: all metrics within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
