#!/usr/bin/env python3
"""Compare a cpm-bench/v1 result against a checked-in baseline.

Used by the CI bench-smoke job to gate performance regressions:

    tools/bench_compare.py BENCH_p1.json bench/baseline.json --tolerance 0.30

For every case present in BOTH documents it compares
  * median wall_seconds   — regression when candidate > baseline * (1 + tol)
  * median *_per_sec rate — regression when candidate < baseline * (1 - tol)

Cases or rates present in only one document are reported but never fail
the gate (adding or renaming a case must not need a two-step dance).
Exit status: 0 clean, 1 at least one regression, 2 malformed input.

The default tolerance is deliberately loose (30%): shared CI runners
jitter by tens of percent, and the gate exists to catch the 2x-5x cliffs
a bad data structure or an accidental debug build causes, not 5% drift.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    schema = doc.get("schema")
    if schema != "cpm-bench/v1":
        raise ValueError(f"{path}: unsupported schema {schema!r}")
    return doc


def cases_by_name(doc):
    return {c["name"]: c for c in doc.get("cases", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("candidate", help="fresh BENCH_<suite>.json to validate")
    ap.add_argument("baseline", help="checked-in reference document")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional slowdown before failing (default 0.30)",
    )
    args = ap.parse_args()
    if not 0.0 <= args.tolerance < 10.0:
        ap.error("--tolerance must be in [0, 10)")

    try:
        cand = cases_by_name(load(args.candidate))
        base = cases_by_name(load(args.baseline))
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"bench_compare: {exc}", file=sys.stderr)
        return 2

    regressions = []
    improvements = []

    def check(case, metric, cand_v, base_v, higher_is_worse):
        if base_v <= 0:
            return  # degenerate baseline sample; nothing meaningful to gate
        ratio = cand_v / base_v
        if higher_is_worse:
            bad = ratio > 1.0 + args.tolerance
            direction = "slower" if ratio > 1 else "faster"
            delta = abs(ratio - 1.0)
        else:
            bad = ratio < 1.0 - args.tolerance
            direction = "slower" if ratio < 1 else "faster"
            delta = abs(1.0 - ratio)
        line = (
            f"  {case}/{metric}: {cand_v:.6g} vs baseline {base_v:.6g} "
            f"({delta:.1%} {direction})"
        )
        if bad:
            regressions.append(line)
        elif delta > args.tolerance:
            improvements.append(line)

    for name in sorted(base):
        if name not in cand:
            print(f"note: case '{name}' missing from candidate (skipped)")
            continue
        c, b = cand[name], base[name]
        check(name, "wall_seconds.median",
              c["wall_seconds"]["median"], b["wall_seconds"]["median"],
              higher_is_worse=True)
        base_rates = b.get("rates", {})
        cand_rates = c.get("rates", {})
        for rate in sorted(base_rates):
            if not rate.endswith("_per_sec"):
                continue
            if rate not in cand_rates:
                print(f"note: rate '{name}/{rate}' missing from candidate (skipped)")
                continue
            check(name, rate, cand_rates[rate]["median"],
                  base_rates[rate]["median"], higher_is_worse=False)

    for name in sorted(set(cand) - set(base)):
        print(f"note: case '{name}' has no baseline yet (skipped)")

    if improvements:
        print(f"improvements beyond {args.tolerance:.0%} (consider refreshing baseline):")
        print("\n".join(improvements))
    if regressions:
        print(f"PERFORMANCE REGRESSION (>{args.tolerance:.0%} vs baseline):")
        print("\n".join(regressions))
        return 1
    print(f"bench_compare: all metrics within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
